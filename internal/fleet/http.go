package fleet

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"drapid/internal/obs"
	"drapid/internal/rdd"
	"drapid/internal/spe"
	"drapid/internal/sps"
)

// The shard protocol is v2 of the fleet data plane (DESIGN.md §12),
// wire-compatible in both directions with the v1 NDJSON protocol:
//
//	GET  /v1/shard/ping         → 200 {"ok":true,"proto":2}
//	HEAD /v1/blob/{digest}      → 204 cached | 404 not cached
//	PUT  /v1/blob/{digest}      ← raw observation bytes (optional gzip)
//	                            → 201 stored (content verified against digest)
//	POST /v1/shard              ← JSON ShardSpec, inline bytes or digest-only
//	                            → event stream + exactly one terminator
//
// Dispatch is split from data: the coordinator uploads each distinct
// observation blob once per worker cache lifetime and then ships only
// its SHA-256 in every shard spec. A digest the worker no longer holds
// fails the POST with 412, which the client answers by re-uploading.
// Every v2 blob response carries the Drapid-Proto header, which is how
// a client tells "v2 worker, blob absent" (404 with the header) from
// "v1 worker, no blob routes at all" (404 without it) and falls back to
// inline specs.
//
// The return stream is negotiated per request: a client that sends
// Accept: application/x-drapid-frames receives length-prefixed binary
// frames (frame.go); anyone else receives the v1 NDJSON lines. Both
// encodings share the completion contract: a response that ends without
// its terminal stats/done record (connection cut, worker killed) is a
// failed attempt, which the coordinator resubmits — and events are only
// folded into the merge when the terminator arrives, so a half-streamed
// response never contaminates merged output.

// protoHeader marks every v2 blob-route response; its absence on a 404
// is how a v1 worker is recognised.
const protoHeader = "Drapid-Proto"

// shardLine is one NDJSON response line (the v1 fallback encoding).
type shardLine struct {
	Events []wireEvent `json:"events,omitempty"`
	Done   bool        `json:"done,omitempty"`
	Stats  *wireStats  `json:"stats,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// wireEvent is spe.SPE with stable JSON tags (the spe package keeps its
// structs tag-free; the wire format is owned here).
type wireEvent struct {
	DM       float64 `json:"dm"`
	SNR      float64 `json:"snr"`
	Time     float64 `json:"time"`
	Sample   int64   `json:"sample"`
	Downfact int     `json:"downfact"`
}

// wireStats mirrors sps.Stats on the wire.
type wireStats struct {
	Trials  int    `json:"trials"`
	Samples int64  `json:"samples"`
	Events  int    `json:"events"`
	Plan    string `json:"plan,omitempty"`
	// StageSeconds ships the shard's per-stage busy/wall seconds back to
	// the coordinator, which folds them additively across shards
	// (DESIGN.md §10). Workers predating this field simply return none.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
}

func toWire(events []spe.SPE) []wireEvent {
	out := make([]wireEvent, len(events))
	for i, e := range events {
		out[i] = wireEvent{DM: e.DM, SNR: e.SNR, Time: e.Time, Sample: e.Sample, Downfact: e.Downfact}
	}
	return out
}

func fromWire(events []wireEvent) []spe.SPE {
	out := make([]spe.SPE, len(events))
	for i, e := range events {
		out[i] = spe.SPE{DM: e.DM, SNR: e.SNR, Time: e.Time, Sample: e.Sample, Downfact: e.Downfact}
	}
	return out
}

// Handler serves the worker side of the shard protocol with a
// default-bounded blob cache: what tests and single-host fleets mount.
func Handler(exec rdd.ExecConfig) http.Handler { return NewHandler(exec, nil) }

// NewHandler serves the worker side of the shard protocol over the given
// executor and blob cache (nil: a DefaultBlobCacheBytes cache counting
// into obs.Default) — what `drapidd -worker` mounts. Shard execution is
// stateless; the blob cache is pure content-addressed state, so a worker
// process can still be killed and replaced at will (the coordinator
// treats the cut connection as a failed attempt, resubmits, and
// re-uploads whatever blobs the replacement is missing).
func NewHandler(exec rdd.ExecConfig, cache *BlobCache) http.Handler {
	if cache == nil {
		cache = NewBlobCache(0, obs.Default)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shard/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true,"proto":2}`)
	})
	mux.HandleFunc("GET /v1/blob/{digest}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(protoHeader, "2")
		digest := r.PathValue("digest")
		if err := ValidDigest(digest); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if r.Method == http.MethodHead {
			// Residency probe: no body, and no hit/miss accounting — only
			// dispatch-path lookups measure cache effectiveness.
			if cache.Contains(digest) {
				w.WriteHeader(http.StatusNoContent)
			} else {
				w.WriteHeader(http.StatusNotFound)
			}
			return
		}
		data, ok := cache.Get(digest)
		if !ok {
			http.Error(w, "blob not cached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(data)
	})
	mux.HandleFunc("PUT /v1/blob/{digest}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(protoHeader, "2")
		digest := r.PathValue("digest")
		if err := ValidDigest(digest); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var src io.Reader = http.MaxBytesReader(w, r.Body, cache.Max())
		if r.Header.Get("Content-Encoding") == "gzip" {
			zr, err := gzip.NewReader(src)
			if err != nil {
				http.Error(w, "bad gzip body: "+err.Error(), http.StatusBadRequest)
				return
			}
			defer zr.Close()
			// Bound the decompressed size too: a gzip bomb must not balloon
			// past the cache's own refusal threshold.
			src = io.LimitReader(zr, cache.Max()+1)
		}
		data, err := io.ReadAll(src)
		if err != nil {
			http.Error(w, "reading blob: "+err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		if err := cache.Put(digest, data); err != nil {
			status := http.StatusBadRequest
			if int64(len(data)) > cache.Max() {
				status = http.StatusRequestEntityTooLarge
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("POST /v1/shard", func(w http.ResponseWriter, r *http.Request) {
		var spec ShardSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad shard spec: "+err.Error()), http.StatusBadRequest)
			return
		}
		switch {
		case len(spec.Filterbank) == 0 && spec.FilterbankDigest != "":
			// Digest-only dispatch: resolve the observation from the cache,
			// or tell the coordinator to upload it (412) — the one protocol
			// answer cache eviction ever needs.
			data, ok := cache.Get(spec.FilterbankDigest)
			if !ok {
				w.Header().Set(protoHeader, "2")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusPreconditionFailed)
				fmt.Fprintf(w, `{"error":"blob %s not cached"}`+"\n", spec.FilterbankDigest)
				return
			}
			spec.Filterbank = data
		case len(spec.Filterbank) > 0 && spec.FilterbankDigest != "":
			// Inline spec that names its content: seed the cache so a later
			// digest-only dispatch (or repeat job) hits. Refusals (size,
			// digest mismatch) only cost the seeding, never the shard.
			_ = cache.Put(spec.FilterbankDigest, spec.Filterbank)
		}
		binary := acceptsFrames(r.Header.Values("Accept"))
		rc := http.NewResponseController(w)
		if binary {
			w.Header().Set("Content-Type", MediaFrames)
		} else {
			w.Header().Set("Content-Type", MediaNDJSON)
		}
		w.WriteHeader(http.StatusOK)
		fw := &frameWriter{w: w}
		enc := json.NewEncoder(w)
		served := time.Now()
		stats, err := RunShard(r.Context(), spec, exec, func(events []spe.SPE) error {
			if binary {
				if err := fw.writeEvents(events); err != nil {
					return err
				}
			} else if err := enc.Encode(shardLine{Events: toWire(events)}); err != nil {
				return err
			}
			return rc.Flush()
		})
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		obs.Default.Histogram("drapid_fleet_shard_service_seconds",
			"Worker-side shard service time (RunShard wall), by outcome.",
			nil, obs.L("outcome", outcome)).Observe(time.Since(served).Seconds())
		switch {
		case err != nil && binary:
			fw.writeError(err.Error())
		case err != nil:
			enc.Encode(shardLine{Error: err.Error()})
		case binary:
			fw.writeStats(stats)
		default:
			enc.Encode(shardLine{Done: true, Stats: &wireStats{
				Trials: stats.Trials, Samples: stats.Samples, Events: stats.Events, Plan: stats.Plan,
				StageSeconds: stats.StageSeconds,
			}})
		}
	})
	return mux
}

// acceptsFrames reports whether any Accept value asks for the binary
// frame encoding.
func acceptsFrames(accept []string) bool {
	for _, v := range accept {
		if strings.Contains(v, MediaFrames) {
			return true
		}
	}
	return false
}

// Remote protocol generations, learned per worker from its responses.
const (
	protoUnknown = 0 // not probed yet: try v2 first
	protoLegacy  = 1 // v1: inline specs, NDJSON responses
	protoBlob    = 2 // v2: blob dispatch, binary frames negotiated
)

// Remote is a worker behind the HTTP shard protocol: the coordinator's
// client for one `drapidd -worker` process. It learns the worker's
// protocol generation from its responses and remembers which blobs it
// has uploaded, so each distinct observation crosses the wire at most
// once per worker cache lifetime.
type Remote struct {
	name    string
	base    string
	client  *http.Client
	gzip    bool
	metrics *obs.Registry
	sent    *obs.Counter
	recv    *obs.Counter

	mu    sync.Mutex
	proto int
	blobs map[string]bool // digests believed resident on the worker
}

// RemoteOption configures a Remote at construction.
type RemoteOption func(*Remote)

// WithWireMetrics records the worker's wire counters
// (drapid_fleet_bytes_sent_total / _received_total, labelled by worker)
// in the given registry.
func WithWireMetrics(reg *obs.Registry) RemoteOption {
	return func(r *Remote) { r.metrics = reg }
}

// WithGzipBlobs compresses blob uploads (Content-Encoding: gzip).
// Worth it on slow links; raw float noise compresses poorly, so the
// default stays uncompressed.
func WithGzipBlobs() RemoteOption {
	return func(r *Remote) { r.gzip = true }
}

// NewRemote builds a worker client for the given base URL (e.g.
// "http://host:8417"). A nil client uses a dedicated streaming-friendly
// default (no response timeout; shard lifetime is bounded by the run
// context, not the transport).
func NewRemote(name, baseURL string, client *http.Client, opts ...RemoteOption) *Remote {
	if client == nil {
		client = &http.Client{}
	}
	r := &Remote{name: name, base: strings.TrimRight(baseURL, "/"), client: client, blobs: make(map[string]bool)}
	for _, o := range opts {
		o(r)
	}
	// Counters resolve to nil-safe no-ops when no registry was attached.
	r.sent = r.metrics.Counter("drapid_fleet_bytes_sent_total",
		"Bytes shipped to the worker: shard spec and blob upload bodies.", obs.L("worker", name))
	r.recv = r.metrics.Counter("drapid_fleet_bytes_received_total",
		"Bytes received from the worker: shard response stream bodies.", obs.L("worker", name))
	return r
}

// Name implements Worker.
func (r *Remote) Name() string { return r.name }

// Ping implements Worker via GET /v1/shard/ping.
func (r *Remote) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/v1/shard/ping", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: worker %s ping: %s", r.name, resp.Status)
	}
	return nil
}

func (r *Remote) legacy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.proto == protoLegacy
}

func (r *Remote) setProto(p int) {
	r.mu.Lock()
	r.proto = p
	r.mu.Unlock()
}

func (r *Remote) rememberBlob(digest string) {
	r.mu.Lock()
	r.blobs[digest] = true
	r.mu.Unlock()
}

func (r *Remote) forgetBlob(digest string) {
	r.mu.Lock()
	delete(r.blobs, digest)
	r.mu.Unlock()
}

func (r *Remote) knowsBlob(digest string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.blobs[digest]
}

// Run implements Worker: ship the observation as a content-addressed
// blob when the worker speaks v2 (once per cache lifetime), POST the
// spec, stream back event batches in whichever encoding the worker
// granted, and require the terminal record — a response that ends
// without one is a failed attempt.
func (r *Remote) Run(ctx context.Context, spec ShardSpec, emit func([]spe.SPE) error) (sps.Stats, error) {
	if spec.FilterbankDigest != "" && len(spec.Filterbank) > 0 && !r.legacy() {
		// Two rounds cover the eviction race: the blob can disappear
		// between ensure and dispatch, in which case 412 sends us around
		// once more. A second 412 (cache thrashing) falls back to inline.
		for attempt := 0; attempt < 2; attempt++ {
			ok, err := r.ensureBlob(ctx, spec.FilterbankDigest, spec.Filterbank)
			if err != nil {
				return sps.Stats{}, err
			}
			if !ok {
				break // v1 worker, or blob refused: ship inline
			}
			lean := spec
			lean.Filterbank = nil
			stats, missing, err := r.post(ctx, lean, emit)
			if !missing {
				return stats, err
			}
			r.forgetBlob(spec.FilterbankDigest)
		}
	}
	stats, missing, err := r.post(ctx, spec, emit)
	if missing {
		// An inline spec can never be answered with 412; a worker that
		// does is broken.
		return stats, fmt.Errorf("fleet: worker %s shard %s/%d: rejected inline spec with 412",
			r.name, spec.Job, spec.Index)
	}
	return stats, err
}

// ensureBlob makes the observation resident on the worker, uploading it
// if the HEAD probe misses. Returns false (no error) when the worker
// turns out to be v1, or refuses the blob — the caller ships inline.
func (r *Remote) ensureBlob(ctx context.Context, digest string, data []byte) (bool, error) {
	if r.knowsBlob(digest) {
		return true, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, r.base+"/v1/blob/"+digest, nil)
	if err != nil {
		return false, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK:
		r.setProto(protoBlob)
		r.rememberBlob(digest)
		return true, nil
	case resp.StatusCode == http.StatusNotFound && resp.Header.Get(protoHeader) != "":
		r.setProto(protoBlob) // v2 worker, blob absent: upload below
	default:
		// No blob routes — a v1 worker (or something equally unwilling).
		// Remember and ship inline from now on; the heartbeat keeps using
		// ping, so a later worker upgrade is picked up after reconnect.
		r.setProto(protoLegacy)
		return false, nil
	}
	return r.putBlob(ctx, digest, data)
}

// putBlob uploads one blob: a streaming body with Content-Length (no
// full-body JSON copy), optionally gzip-compressed. Refusals (413 and
// kin) report false so the shard ships inline; only transport errors
// propagate.
func (r *Remote) putBlob(ctx context.Context, digest string, data []byte) (bool, error) {
	var body *bytes.Reader
	encoding := ""
	if r.gzip {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			return false, err
		}
		if err := zw.Close(); err != nil {
			return false, err
		}
		body = bytes.NewReader(buf.Bytes())
		encoding = "gzip"
	} else {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.base+"/v1/blob/"+digest, body)
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return false, nil
	}
	r.sent.Add(float64(body.Size()))
	r.rememberBlob(digest)
	return true, nil
}

// countReader counts bytes read through it.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// post executes one shard RPC. missing reports a 412 blob-not-cached
// answer (the caller re-uploads and retries); every other non-200 is an
// error. The response encoding follows the worker's Content-Type, so a
// v1 worker that ignores Accept is decoded as NDJSON transparently.
func (r *Remote) post(ctx context.Context, spec ShardSpec, emit func([]spe.SPE) error) (stats sps.Stats, missing bool, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return sps.Stats{}, false, err
	}
	// bytes.Reader bodies carry Content-Length, so the upload is not
	// chunked and proxies can apply sane buffering.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return sps.Stats{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", MediaFrames+", "+MediaNDJSON)
	resp, err := r.client.Do(req)
	if err != nil {
		return sps.Stats{}, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	r.sent.Add(float64(len(body)))
	if resp.StatusCode == http.StatusPreconditionFailed {
		return sps.Stats{}, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return sps.Stats{}, false, fmt.Errorf("fleet: worker %s shard %s/%d: %s: %s",
			r.name, spec.Job, spec.Index, resp.Status, strings.TrimSpace(string(msg)))
	}
	cr := &countReader{r: resp.Body}
	defer func() { r.recv.Add(float64(cr.n)) }()
	ct := resp.Header.Get("Content-Type")
	if mt, _, mtErr := mime.ParseMediaType(ct); mtErr == nil {
		ct = mt
	}
	if ct == MediaFrames {
		stats, err = r.decodeFrames(cr, spec, emit)
		return stats, false, err
	}
	stats, err = r.decodeNDJSON(cr, spec, emit)
	return stats, false, err
}

// decodeFrames drains a binary frame stream (frame.go): event batches
// through emit, then the terminal stats or error frame.
func (r *Remote) decodeFrames(body io.Reader, spec ShardSpec, emit func([]spe.SPE) error) (sps.Stats, error) {
	fr := &frameReader{r: bufio.NewReaderSize(body, 64<<10)}
	for {
		typ, payload, err := fr.next()
		if err == io.EOF {
			return sps.Stats{}, fmt.Errorf("fleet: worker %s shard %s/%d: stream ended without completion",
				r.name, spec.Job, spec.Index)
		}
		if err != nil {
			return sps.Stats{}, fmt.Errorf("fleet: worker %s shard %s/%d: stream cut: %w",
				r.name, spec.Job, spec.Index, err)
		}
		switch typ {
		case frameEvents:
			if emit != nil && len(payload) > 0 {
				if err := emit(fr.events(payload)); err != nil {
					return sps.Stats{}, err
				}
			}
		case frameStats:
			stats, err := decodeStats(payload)
			if err != nil {
				return sps.Stats{}, fmt.Errorf("fleet: worker %s shard %s/%d: %w", r.name, spec.Job, spec.Index, err)
			}
			return stats, nil
		case frameError:
			return sps.Stats{}, fmt.Errorf("fleet: worker %s shard %s/%d: %s",
				r.name, spec.Job, spec.Index, string(payload))
		}
	}
}

// decodeNDJSON drains a v1 NDJSON stream. json.Decoder reads values, not
// lines, so an event-dense batch far past any line-scanner buffer cap
// decodes fine — the 64 MiB bufio.Scanner ceiling this path once had
// silently failed exactly the shards that needed the stream most.
func (r *Remote) decodeNDJSON(body io.Reader, spec ShardSpec, emit func([]spe.SPE) error) (sps.Stats, error) {
	dec := json.NewDecoder(body)
	for {
		var l shardLine
		if err := dec.Decode(&l); err != nil {
			if err == io.EOF {
				return sps.Stats{}, fmt.Errorf("fleet: worker %s shard %s/%d: stream ended without completion",
					r.name, spec.Job, spec.Index)
			}
			return sps.Stats{}, fmt.Errorf("fleet: worker %s shard %s/%d: stream cut: %w",
				r.name, spec.Job, spec.Index, err)
		}
		switch {
		case l.Error != "":
			return sps.Stats{}, fmt.Errorf("fleet: worker %s shard %s/%d: %s", r.name, spec.Job, spec.Index, l.Error)
		case l.Done:
			var stats sps.Stats
			if l.Stats != nil {
				stats = sps.Stats{
					Trials: l.Stats.Trials, Samples: l.Stats.Samples, Events: l.Stats.Events, Plan: l.Stats.Plan,
					StageSeconds: l.Stats.StageSeconds,
				}
			}
			return stats, nil
		case len(l.Events) > 0:
			if emit != nil {
				if err := emit(fromWire(l.Events)); err != nil {
					return sps.Stats{}, err
				}
			}
		}
	}
}

// WaitReady polls a worker until it answers a ping or the deadline
// expires: a convenience for process orchestration (tests, the CI smoke
// script) that starts worker processes and needs them listening before
// submitting.
func WaitReady(ctx context.Context, w Worker, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pctx, cancel := context.WithTimeout(ctx, time.Second)
		err := w.Ping(pctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: worker %s not ready after %s: %w", w.Name(), timeout, err)
		}
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
