package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"drapid/internal/hdfs"
)

// Store is the persistence the job journal writes through: a flat
// namespace of small named blobs (one per journaled job). Two
// implementations ship — FSStore over the engine's simulated distributed
// filesystem (journal survives engine restart in tests sharing one FS)
// and DirStore over a real directory (what `drapidd -journal` uses, so a
// daemon restart replays the jobs that were queued or running when it
// died). Implementations must be safe for concurrent use.
type Store interface {
	// Put writes the blob, replacing any previous blob of that name.
	Put(name string, data []byte) error
	// Get reads a blob.
	Get(name string) ([]byte, error)
	// List returns the stored names, sorted.
	List() ([]string, error)
	// Delete removes a blob; deleting a missing name is an error.
	Delete(name string) error
}

// FSStore journals into a simulated hdfs.FS under a name prefix. Blobs
// are stored as single-line files, so they must not contain newlines
// (journal entries are compact JSON, which never does).
type FSStore struct {
	mu     sync.Mutex
	fs     *hdfs.FS
	prefix string
}

// NewFSStore builds a journal store over fs, keeping entries under
// prefix (e.g. "journal/").
func NewFSStore(fs *hdfs.FS, prefix string) *FSStore {
	return &FSStore{fs: fs, prefix: prefix}
}

// Put implements Store; hdfs refuses overwrites, so replace is
// delete-then-write under the store lock.
func (s *FSStore) Put(name string, data []byte) error {
	if strings.ContainsAny(string(data), "\n") {
		return fmt.Errorf("fleet: journal blob %q contains a newline", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	full := s.prefix + name
	if _, err := s.fs.Open(full); err == nil {
		if err := s.fs.Delete(full); err != nil {
			return err
		}
	}
	_, err := s.fs.WriteLines(full, []string{string(data)})
	return err
}

// Get implements Store.
func (s *FSStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.fs.Open(s.prefix + name)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for _, b := range f.Blocks {
		for _, line := range b.Lines {
			sb.WriteString(line)
		}
	}
	return []byte(sb.String()), nil
}

// List implements Store.
func (s *FSStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for _, n := range s.fs.List() {
		if rest, ok := strings.CutPrefix(n, s.prefix); ok {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements Store.
func (s *FSStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Delete(s.prefix + name)
}

// DirStore journals into a real directory, one file per blob, written
// atomically (temp file + rename) so a crash mid-write never leaves a
// torn entry for recovery to choke on.
type DirStore struct {
	dir string
}

// NewDirStore builds a journal store in dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// Put implements Store.
func (s *DirStore) Put(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.dir, name))
}

// Get implements Store.
func (s *DirStore) Get(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, name))
}

// List implements Store.
func (s *DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements Store.
func (s *DirStore) Delete(name string) error {
	return os.Remove(filepath.Join(s.dir, name))
}
