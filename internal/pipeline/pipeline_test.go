package pipeline_test

import (
	"math/rand"
	"sort"
	"testing"

	"drapid/internal/core"
	"drapid/internal/dbscan"
	"drapid/internal/features"
	"drapid/internal/hdfs"
	"drapid/internal/pipeline"
	"drapid/internal/rapidmt"
	"drapid/internal/rdd"
	"drapid/internal/spe"
	"drapid/internal/synth"
	"drapid/internal/yarn"
)

// makeSurveyData generates a small multi-observation PALFA-like dataset and
// runs stages 1–2.
func makeSurveyData(t *testing.T, seed int64, numObs int) (*pipeline.Prepared, synth.Survey) {
	t.Helper()
	sv := synth.PALFA()
	sv.TobsSec = 12 // short test observations: a handful of pulses per source
	gen := synth.NewGenerator(sv, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	var obs []spe.Observation
	for i := 0; i < numObs; i++ {
		mix := synth.Sources{
			Pulsars: []synth.Pulsar{
				synth.RandomPulsar(rng, synth.AnyBand, synth.AnyBrightness, false),
			},
			NumImpulseRFI: 2,
			NumFlatRFI:    2,
			NumNoise:      300,
		}
		o, _ := gen.Observe(gen.NextKey(), mix)
		obs = append(obs, o)
	}
	return pipeline.Prepare(obs, sv.Grid, dbscan.DefaultParams()), sv
}

func newTestContext(t *testing.T, executors int) *rdd.Context {
	t.Helper()
	fs := hdfs.New(hdfs.Config{BlockSize: 64 << 10, Replication: 3}, 15)
	rm := yarn.NewResourceManager(yarn.PaperCluster())
	grants, err := rm.Allocate(yarn.PaperExecutor(), executors)
	if err != nil {
		t.Fatal(err)
	}
	return rdd.NewContext(fs, rdd.FromContainers(grants), rdd.DefaultCostModel())
}

func featConfig(sv synth.Survey) features.Config {
	return features.Config{Grid: sv.Grid, BandMHz: sv.BandMHz, FreqGHz: sv.FreqGHz}
}

func TestPrepareProducesBothFiles(t *testing.T) {
	prep, _ := makeSurveyData(t, 1, 2)
	if len(prep.DataLines) < 10 || !spe.IsHeader(prep.DataLines[0]) {
		t.Fatalf("bad data lines: %d", len(prep.DataLines))
	}
	if prep.NumClusters() == 0 {
		t.Fatal("no clusters found")
	}
	if !spe.IsHeader(prep.ClusterLines[0]) {
		t.Error("cluster file missing header")
	}
}

func TestDRAPIDEndToEnd(t *testing.T) {
	prep, sv := makeSurveyData(t, 2, 3)
	ctx := newTestContext(t, 5)
	if err := prep.Upload(ctx.FS, "spe.csv", "clusters.csv"); err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
		DataFile:    "spe.csv",
		ClusterFile: "clusters.csv",
		OutDir:      "ml",
		Feat:        featConfig(sv),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 {
		t.Fatal("no single pulses identified")
	}
	if res.SimSeconds <= 0 {
		t.Error("no simulated time elapsed")
	}
	recs, err := pipeline.CollectML(ctx, "ml")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Records {
		t.Errorf("collected %d records, job reported %d", len(recs), res.Records)
	}
	for _, r := range recs {
		if r.Vec[features.SNRMax] < 5 {
			t.Errorf("pulse with SNRMax %g below threshold", r.Vec[features.SNRMax])
		}
		if r.PulseRank < 1 {
			t.Errorf("bad pulse rank %d", r.PulseRank)
		}
	}
}

// TestDistributedMatchesMultithreaded is the cross-implementation oracle:
// the distributed job and the multithreaded baseline run the same search
// over the same files and must produce identical ML records.
func TestDistributedMatchesMultithreaded(t *testing.T) {
	prep, sv := makeSurveyData(t, 3, 3)
	ctx := newTestContext(t, 4)
	if err := prep.Upload(ctx.FS, "spe.csv", "clusters.csv"); err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
		DataFile: "spe.csv", ClusterFile: "clusters.csv", OutDir: "ml",
		Feat: featConfig(sv),
	}); err != nil {
		t.Fatal(err)
	}
	distRecs, err := pipeline.CollectML(ctx, "ml")
	if err != nil {
		t.Fatal(err)
	}

	mtRes, err := rapidmt.Run(prep.DataLines, prep.ClusterLines, 4,
		rapidmt.PaperWorkstation(), rdd.DefaultCostModel(), core.DefaultParams(), featConfig(sv))
	if err != nil {
		t.Fatal(err)
	}

	format := func(rs []pipeline.MLRecord) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.Format()
		}
		sort.Strings(out)
		return out
	}
	d, m := format(distRecs), format(mtRes.ML)
	if len(d) != len(m) {
		t.Fatalf("record counts differ: distributed %d vs multithreaded %d", len(d), len(m))
	}
	for i := range d {
		if d[i] != m[i] {
			t.Fatalf("record %d differs:\n dist: %s\n   mt: %s", i, d[i], m[i])
		}
	}
}

func TestMLRecordRoundTrip(t *testing.T) {
	r := pipeline.MLRecord{Key: "PALFA:55700.0200:3.7000:-28.1000:1", ClusterID: 12, PulseRank: 2}
	for i := range r.Vec {
		r.Vec[i] = float64(i) * 1.5
	}
	got, err := pipeline.ParseMLRecord(r.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != r.Key || got.ClusterID != 12 || got.PulseRank != 2 {
		t.Errorf("metadata mismatch: %+v", got)
	}
	for i := range r.Vec {
		if diff := got.Vec[i] - r.Vec[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("feature %d: %g != %g", i, got.Vec[i], r.Vec[i])
		}
	}
	if _, err := pipeline.ParseMLRecord("not,a,record"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestProcessKeyGroupSearchesOnlyClusterBoxes(t *testing.T) {
	key := "S:1.0000:2.0000:3.0000:0"
	// One tight cluster plus far-away stray events.
	var dataPayloads []string
	for i := 0; i < 30; i++ {
		e := spe.SPE{DM: 100 + float64(i)*0.1, SNR: 5 + float64(15-abs(i-15)), Time: 10}
		dataPayloads = append(dataPayloads, payload(e))
	}
	dataPayloads = append(dataPayloads, payload(spe.SPE{DM: 900, SNR: 50, Time: 90}))
	cl := &spe.Cluster{ID: 0, N: 30, DMMin: 100, DMMax: 103, TMin: 9, TMax: 11, SNRMax: 20, Rank: 1}
	_, clPayload, err := spe.SplitKeyed(spe.FormatClusterLine(cl))
	if err != nil {
		t.Fatal(err)
	}
	recs, stats, err := pipeline.ProcessKeyGroup(key, []string{clPayload}, dataPayloads,
		core.DefaultParams(), features.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SPEsSearched != 30 {
		t.Errorf("searched %d SPEs, want 30 (stray excluded)", stats.SPEsSearched)
	}
	for _, r := range recs {
		if r.Vec[features.SNRMax] == 50 {
			t.Error("stray event leaked into a pulse")
		}
	}
}

func payload(e spe.SPE) string {
	line := spe.FormatDataLine(spe.Key{Dataset: "S", MJD: 1, RA: 2, Dec: 3}, e)
	_, p, err := spe.SplitKeyed(line)
	if err != nil {
		panic(err)
	}
	return p
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestEmptyKeyGroup(t *testing.T) {
	recs, stats, err := pipeline.ProcessKeyGroup("k", nil, []string{"1,6,2,3,4"}, core.DefaultParams(), features.Config{})
	if err != nil || recs != nil || stats.SPEsSearched != 0 {
		t.Errorf("empty cluster group: recs=%v stats=%+v err=%v", recs, stats, err)
	}
}
