package pipeline

import (
	"fmt"
	"strings"
	"time"

	"drapid/internal/core"
	"drapid/internal/features"
	"drapid/internal/rdd"
	"drapid/internal/spe"
)

// JobConfig parameterises one D-RAPID run.
type JobConfig struct {
	// DataFile and ClusterFile are the HDFS inputs.
	DataFile    string
	ClusterFile string
	// OutDir is the HDFS directory the ML part files are saved under.
	OutDir string
	// PartitionsPerCore sizes the hash partitioner: the paper's custom
	// partitioner "assigned 32 partitions for each core".
	PartitionsPerCore int
	// Params tunes the search; zero fields take the paper defaults.
	Params core.Params
	// Feat supplies the feature-extraction context.
	Feat features.Config
	// Emit, when non-nil, streams each key group's ML records as soon as
	// that group's search completes, before the job's HDFS output exists —
	// the hook the public drapid.Job candidate stream is built on. It is
	// called from executor worker goroutines concurrently and must be safe
	// for concurrent use; it must not block indefinitely (a slow consumer
	// stalls search workers, which is how stream backpressure propagates).
	// Under lineage recovery a recomputed partition re-emits its groups, so
	// delivery is at-least-once per key group; the saved HDFS output stays
	// exactly-once either way.
	Emit func(recs []MLRecord)
}

// JobResult summarises a run.
type JobResult struct {
	// SimSeconds is the simulated elapsed time of the whole job (zero when
	// the context runs with ExecConfig.SimClock off).
	SimSeconds float64
	// WallSeconds is the measured host wall-clock time of the whole job.
	WallSeconds float64
	// Records is the number of ML records produced.
	Records int
	// Pulses is the number of single pulses identified (== Records).
	Pulses int
	// RecordsDropped is the number of malformed key groups the search phase
	// discarded (mirrors Metrics.RecordsDropped for this run).
	RecordsDropped int64
	// Metrics snapshots the engine counters.
	Metrics rdd.Metrics
}

// RunDRAPID executes the three-stage D-RAPID data flow of Figure 3 on the
// given context:
//
//	Stage 1/2: load both files, strip headers, map to key-value pairs.
//	Stage 3:   hash-partition both KVPRDDs identically, aggregate by key
//	           (map-side combine shrinks the duplicate-key pair count),
//	           left-outer-join cluster→data, and search each key group.
//
// ML output is saved back to HDFS under cfg.OutDir.
//
// All stages execute concurrently on the context's worker pool
// (rdd.ExecConfig); the Search phase additionally drives each key group's
// ProcessKeyGroup as its own pool work item. Cancelling a context bound
// with ctx.SetContext stops the job between task batches and RunDRAPID
// returns the cancellation cause. Outputs are deterministic: any worker
// count produces record-for-record the same ML files.
func RunDRAPID(ctx *rdd.Context, cfg JobConfig) (JobResult, error) {
	if cfg.PartitionsPerCore <= 0 {
		cfg.PartitionsPerCore = 32
	}
	if cfg.Params.Weight == 0 {
		cfg.Params = core.DefaultParams()
	}
	if err := ctx.Err(); err != nil {
		return JobResult{}, err
	}
	start := ctx.SimElapsed()
	droppedStart := ctx.Metrics().RecordsDropped
	wallStart := time.Now()

	dataKV, err := loadKeyed(ctx, cfg.DataFile)
	if err != nil {
		return JobResult{}, err
	}
	clusterKV, err := loadKeyed(ctx, cfg.ClusterFile)
	if err != nil {
		return JobResult{}, err
	}

	numParts := ctx.TotalCores() * cfg.PartitionsPerCore
	part := rdd.NewHashPartitioner(numParts)

	weighGroup := func(p rdd.Pair[string, []string]) int64 {
		n := int64(len(p.Key))
		for _, s := range p.Value {
			n += int64(len(s)) + 16
		}
		return n
	}
	// The Aggregate phase: one pair per key afterwards, cached in executor
	// memory so the join reads colocated, in-memory inputs. The data side
	// is the 10-GB-scale working set whose fit (or spill) decides the
	// single-executor behaviour of Figure 4.
	dataAgg := groupPayloads(dataKV, part, weighGroup).Cache()
	clusterAgg := groupPayloads(clusterKV, part, weighGroup).Cache()

	joined := rdd.LeftOuterJoin(clusterAgg, dataAgg, part)

	searchCost := ctx.Cost.SearchPerSPE
	// Per-key work items nest inside partition tasks, so size the inner
	// pool by the leftover width: wide stages search keys serially within
	// each partition task, narrow ones (fewer partitions than workers)
	// fan keys out with the idle workers — never Workers² goroutines.
	innerExec := ctx.Exec.NestedConfig(joined.NumPartitions())
	ml := rdd.MapPartitions(joined, func(p int, tc *rdd.TaskContext, in []rdd.Pair[string, rdd.Joined[[]string, []string]]) []string {
		// The Search phase proper: each key group is one work item on the
		// executor pool, nested under the partition task. Outputs and CPU
		// charges are gathered per item and folded back in key order,
		// keeping the result record-for-record identical to a serial run.
		outs := make([][]string, len(in))
		cpu := make([]float64, len(in))
		dropped := make([]int64, len(in))
		_ = ctx.RunTasksConfig(innerExec, len(in), func(i int) {
			kv := in[i]
			clusterPayloads := kv.Value.Left
			var dataPayloads []string
			if kv.Value.HasRight {
				dataPayloads = kv.Value.Right
			}
			recs, stats, err := ProcessKeyGroup(kv.Key, clusterPayloads, dataPayloads, cfg.Params, cfg.Feat)
			if err != nil {
				// Malformed key groups are dropped, as the Scala driver's
				// parse guards do — but no longer invisibly: the count
				// surfaces in Metrics.RecordsDropped and JobResult.
				dropped[i] = 1
				return
			}
			cpu[i] = float64(stats.SPEsSearched) * searchCost
			for _, r := range recs {
				outs[i] = append(outs[i], r.Format())
			}
			if cfg.Emit != nil && len(recs) > 0 {
				cfg.Emit(recs)
			}
		})
		var out []string
		for i := range outs {
			tc.AddCPU(cpu[i])
			tc.CountDropped(dropped[i])
			out = append(out, outs[i]...)
		}
		return out
	})
	ml.SetWeigher(func(s string) int64 { return int64(len(s)) + 1 })
	// Cache the result so the count action and the save action share one
	// execution of the expensive join+search stage.
	ml.Cache()

	count := rdd.Count(ml)
	if err := ctx.Err(); err != nil {
		// Cancelled mid-job: partitions the pool never ran are missing, so
		// the count is partial and nothing is saved.
		return JobResult{}, err
	}
	if err := rdd.SaveTextFile(ml, cfg.OutDir); err != nil {
		return JobResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return JobResult{}, err
	}

	m := ctx.Metrics()
	return JobResult{
		SimSeconds:     ctx.SimElapsed() - start,
		WallSeconds:    time.Since(wallStart).Seconds(),
		Records:        int(count),
		Pulses:         int(count),
		RecordsDropped: m.RecordsDropped - droppedStart,
		Metrics:        m,
	}, nil
}

// loadKeyed is stages 1–2 of Figure 3 for one file: read from HDFS, strip
// the header, and map each record to a (descriptor-key, payload) pair.
func loadKeyed(ctx *rdd.Context, name string) (*rdd.RDD[rdd.Pair[string, string]], error) {
	lines, err := rdd.TextFile(ctx, name)
	if err != nil {
		return nil, err
	}
	body := rdd.Filter(lines, func(s string) bool { return !spe.IsHeader(s) })
	kv := rdd.Map(body, func(s string) rdd.Pair[string, string] {
		key, payload, err := spe.SplitKeyed(s)
		if err != nil {
			return rdd.Pair[string, string]{} // dropped by the empty-key filter below
		}
		return rdd.Pair[string, string]{Key: key, Value: payload}
	})
	kv = rdd.Filter(kv, func(p rdd.Pair[string, string]) bool { return p.Key != "" })
	kv.SetWeigher(func(p rdd.Pair[string, string]) int64 {
		return int64(len(p.Key) + len(p.Value) + 2)
	})
	return kv, nil
}

// groupPayloads aggregates all payload strings per key.
func groupPayloads(kv *rdd.RDD[rdd.Pair[string, string]], part rdd.Partitioner[string], weigh func(rdd.Pair[string, []string]) int64) *rdd.RDD[rdd.Pair[string, []string]] {
	return rdd.AggregateByKey(kv, part,
		func() []string { return nil },
		func(a []string, v string) []string { return append(a, v) },
		func(a, b []string) []string { return append(a, b...) },
		weigh)
}

// CollectML reads the ML part files a job saved under dir back out of HDFS
// and parses them — stage 4's "extract and concatenate" step.
func CollectML(ctx *rdd.Context, dir string) ([]MLRecord, error) {
	var out []MLRecord
	for _, name := range ctx.FS.List() {
		if !strings.HasPrefix(name, dir+"/part-") {
			continue
		}
		f, err := ctx.FS.Open(name)
		if err != nil {
			return nil, err
		}
		for _, b := range f.Blocks {
			for _, line := range b.Lines {
				if spe.IsHeader(line) {
					continue
				}
				r, err := ParseMLRecord(line)
				if err != nil {
					return nil, fmt.Errorf("pipeline: %s: %w", name, err)
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}
