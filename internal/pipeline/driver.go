package pipeline

import (
	"fmt"
	"strings"

	"drapid/internal/core"
	"drapid/internal/features"
	"drapid/internal/rdd"
	"drapid/internal/spe"
)

// JobConfig parameterises one D-RAPID run.
type JobConfig struct {
	// DataFile and ClusterFile are the HDFS inputs.
	DataFile    string
	ClusterFile string
	// OutDir is the HDFS directory the ML part files are saved under.
	OutDir string
	// PartitionsPerCore sizes the hash partitioner: the paper's custom
	// partitioner "assigned 32 partitions for each core".
	PartitionsPerCore int
	// Params tunes the search; zero fields take the paper defaults.
	Params core.Params
	// Feat supplies the feature-extraction context.
	Feat features.Config
}

// JobResult summarises a run.
type JobResult struct {
	// SimSeconds is the simulated elapsed time of the whole job.
	SimSeconds float64
	// Records is the number of ML records produced.
	Records int
	// Pulses is the number of single pulses identified (== Records).
	Pulses int
	// Metrics snapshots the engine counters.
	Metrics rdd.Metrics
}

// RunDRAPID executes the three-stage D-RAPID data flow of Figure 3 on the
// given context:
//
//	Stage 1/2: load both files, strip headers, map to key-value pairs.
//	Stage 3:   hash-partition both KVPRDDs identically, aggregate by key
//	           (map-side combine shrinks the duplicate-key pair count),
//	           left-outer-join cluster→data, and search each key group.
//
// ML output is saved back to HDFS under cfg.OutDir.
func RunDRAPID(ctx *rdd.Context, cfg JobConfig) (JobResult, error) {
	if cfg.PartitionsPerCore <= 0 {
		cfg.PartitionsPerCore = 32
	}
	if cfg.Params.Weight == 0 {
		cfg.Params = core.DefaultParams()
	}
	start := ctx.SimElapsed()

	dataKV, err := loadKeyed(ctx, cfg.DataFile)
	if err != nil {
		return JobResult{}, err
	}
	clusterKV, err := loadKeyed(ctx, cfg.ClusterFile)
	if err != nil {
		return JobResult{}, err
	}

	numParts := ctx.TotalCores() * cfg.PartitionsPerCore
	part := rdd.NewHashPartitioner(numParts)

	weighGroup := func(p rdd.Pair[string, []string]) int64 {
		n := int64(len(p.Key))
		for _, s := range p.Value {
			n += int64(len(s)) + 16
		}
		return n
	}
	// The Aggregate phase: one pair per key afterwards, cached in executor
	// memory so the join reads colocated, in-memory inputs. The data side
	// is the 10-GB-scale working set whose fit (or spill) decides the
	// single-executor behaviour of Figure 4.
	dataAgg := groupPayloads(dataKV, part, weighGroup).Cache()
	clusterAgg := groupPayloads(clusterKV, part, weighGroup).Cache()

	joined := rdd.LeftOuterJoin(clusterAgg, dataAgg, part)

	searchCost := ctx.Cost.SearchPerSPE
	ml := rdd.MapPartitions(joined, func(p int, tc *rdd.TaskContext, in []rdd.Pair[string, rdd.Joined[[]string, []string]]) []string {
		var out []string
		for _, kv := range in {
			clusterPayloads := kv.Value.Left
			var dataPayloads []string
			if kv.Value.HasRight {
				dataPayloads = kv.Value.Right
			}
			recs, stats, err := ProcessKeyGroup(kv.Key, clusterPayloads, dataPayloads, cfg.Params, cfg.Feat)
			if err != nil {
				// Malformed records are dropped, as the Scala driver's
				// parse guards do; they are invisible at this layer.
				continue
			}
			tc.AddCPU(float64(stats.SPEsSearched) * searchCost)
			for _, r := range recs {
				out = append(out, r.Format())
			}
		}
		return out
	})
	ml.SetWeigher(func(s string) int64 { return int64(len(s)) + 1 })
	// Cache the result so the count action and the save action share one
	// execution of the expensive join+search stage.
	ml.Cache()

	count := rdd.Count(ml)
	if err := rdd.SaveTextFile(ml, cfg.OutDir); err != nil {
		return JobResult{}, err
	}

	return JobResult{
		SimSeconds: ctx.SimElapsed() - start,
		Records:    int(count),
		Pulses:     int(count),
		Metrics:    ctx.Metrics(),
	}, nil
}

// loadKeyed is stages 1–2 of Figure 3 for one file: read from HDFS, strip
// the header, and map each record to a (descriptor-key, payload) pair.
func loadKeyed(ctx *rdd.Context, name string) (*rdd.RDD[rdd.Pair[string, string]], error) {
	lines, err := rdd.TextFile(ctx, name)
	if err != nil {
		return nil, err
	}
	body := rdd.Filter(lines, func(s string) bool { return !spe.IsHeader(s) })
	kv := rdd.Map(body, func(s string) rdd.Pair[string, string] {
		key, payload, err := spe.SplitKeyed(s)
		if err != nil {
			return rdd.Pair[string, string]{} // dropped by the empty-key filter below
		}
		return rdd.Pair[string, string]{Key: key, Value: payload}
	})
	kv = rdd.Filter(kv, func(p rdd.Pair[string, string]) bool { return p.Key != "" })
	kv.SetWeigher(func(p rdd.Pair[string, string]) int64 {
		return int64(len(p.Key) + len(p.Value) + 2)
	})
	return kv, nil
}

// groupPayloads aggregates all payload strings per key.
func groupPayloads(kv *rdd.RDD[rdd.Pair[string, string]], part rdd.Partitioner[string], weigh func(rdd.Pair[string, []string]) int64) *rdd.RDD[rdd.Pair[string, []string]] {
	return rdd.AggregateByKey(kv, part,
		func() []string { return nil },
		func(a []string, v string) []string { return append(a, v) },
		func(a, b []string) []string { return append(a, b...) },
		weigh)
}

// CollectML reads the ML part files a job saved under dir back out of HDFS
// and parses them — stage 4's "extract and concatenate" step.
func CollectML(ctx *rdd.Context, dir string) ([]MLRecord, error) {
	var out []MLRecord
	for _, name := range ctx.FS.List() {
		if !strings.HasPrefix(name, dir+"/part-") {
			continue
		}
		f, err := ctx.FS.Open(name)
		if err != nil {
			return nil, err
		}
		for _, b := range f.Blocks {
			for _, line := range b.Lines {
				if spe.IsHeader(line) {
					continue
				}
				r, err := ParseMLRecord(line)
				if err != nil {
					return nil, fmt.Errorf("pipeline: %s: %w", name, err)
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}
