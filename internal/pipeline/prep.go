package pipeline

import (
	"drapid/internal/dbscan"
	"drapid/internal/dmgrid"
	"drapid/internal/hdfs"
	"drapid/internal/spe"
)

// Prepared is the output of stages 1–2 for a set of observations: the SPE
// data lines and cluster lines ready for HDFS upload, plus the in-memory
// clusters for ground-truth matching.
type Prepared struct {
	DataLines    []string
	ClusterLines []string
	// Keys and Clusters hold the stage-2 output per observation, aligned.
	Keys     []spe.Key
	Clusters [][]*spe.Cluster
	// Results holds the full per-observation clustering outcome (labels and
	// member indices), aligned with Keys — what the sifting stage reads
	// cluster membership from.
	Results []*dbscan.Result
	// NumSPEs is the total event count across observations.
	NumSPEs int
}

// Prepare runs stage 1 (preprocessing into SPE records) and stage 2 (the
// customized DBSCAN) over observations, producing the two CSV inputs the
// distributed job joins. Headers are included, as the real files carry
// them; the driver strips them (Figure 3, stage 1).
func Prepare(obs []spe.Observation, grid *dmgrid.Grid, params dbscan.Params) *Prepared {
	p := &Prepared{
		DataLines:    []string{spe.DataHeader},
		ClusterLines: []string{spe.ClusterHeader},
	}
	for _, o := range obs {
		res := dbscan.Cluster(o.Events, grid, o.Key, params)
		for _, e := range o.Events {
			p.DataLines = append(p.DataLines, spe.FormatDataLine(o.Key, e))
		}
		for _, c := range res.Clusters {
			p.ClusterLines = append(p.ClusterLines, spe.FormatClusterLine(c))
		}
		p.Keys = append(p.Keys, o.Key)
		p.Clusters = append(p.Clusters, res.Clusters)
		p.Results = append(p.Results, res)
		p.NumSPEs += len(o.Events)
	}
	return p
}

// NumClusters counts clusters across observations.
func (p *Prepared) NumClusters() int {
	n := 0
	for _, cs := range p.Clusters {
		n += len(cs)
	}
	return n
}

// Upload writes the prepared files into HDFS under the given names.
func (p *Prepared) Upload(fs *hdfs.FS, dataName, clusterName string) error {
	if _, err := fs.WriteLines(dataName, p.DataLines); err != nil {
		return err
	}
	_, err := fs.WriteLines(clusterName, p.ClusterLines)
	return err
}
