package pipeline_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"drapid/internal/pipeline"
	"drapid/internal/spe"
)

// TestEmitStreamsAllRecords: the per-key-group Emit hook must deliver
// exactly the records the job saves to HDFS (order aside), while the
// batch output stays intact.
func TestEmitStreamsAllRecords(t *testing.T) {
	prep, sv := makeSurveyData(t, 5, 3)
	ctx := newTestContext(t, 4)
	if err := prep.Upload(ctx.FS, "spe.csv", "clusters.csv"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var emitted []string
	res, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
		DataFile: "spe.csv", ClusterFile: "clusters.csv", OutDir: "ml",
		Feat: featConfig(sv),
		Emit: func(recs []pipeline.MLRecord) {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range recs {
				emitted = append(emitted, r.Format())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	saved, err := pipeline.CollectML(ctx, "ml")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(saved))
	for i, r := range saved {
		want[i] = r.Format()
	}
	sort.Strings(want)
	sort.Strings(emitted)
	if len(emitted) != len(want) || len(emitted) != res.Records {
		t.Fatalf("emitted %d records, saved %d, result says %d", len(emitted), len(want), res.Records)
	}
	for i := range want {
		if emitted[i] != want[i] {
			t.Fatalf("record %d differs:\nemitted: %s\n  saved: %s", i, emitted[i], want[i])
		}
	}
}

// TestMalformedKeyGroupCounted: a cluster record that fails to parse drops
// its key group — and the drop must be counted, not silent.
func TestMalformedKeyGroupCounted(t *testing.T) {
	prep, sv := makeSurveyData(t, 6, 3)
	for i, line := range prep.ClusterLines {
		if spe.IsHeader(line) {
			continue
		}
		cut := strings.LastIndex(line, ",")
		prep.ClusterLines[i] = line[:cut] + ",notanumber"
		break
	}
	ctx := newTestContext(t, 3)
	if err := prep.Upload(ctx.FS, "spe.csv", "clusters.csv"); err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
		DataFile: "spe.csv", ClusterFile: "clusters.csv", OutDir: "ml",
		Feat: featConfig(sv),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsDropped != 1 {
		t.Fatalf("JobResult.RecordsDropped = %d, want 1", res.RecordsDropped)
	}
	if res.Metrics.RecordsDropped != 1 {
		t.Fatalf("Metrics.RecordsDropped = %d, want 1", res.Metrics.RecordsDropped)
	}
}
