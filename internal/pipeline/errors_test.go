package pipeline_test

import (
	"testing"

	"drapid/internal/pipeline"
)

func TestRunDRAPIDMissingFiles(t *testing.T) {
	ctx := newTestContext(t, 2)
	if _, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
		DataFile: "nope.csv", ClusterFile: "also-nope.csv", OutDir: "ml",
	}); err == nil {
		t.Fatal("missing input files accepted")
	}
}

func TestCollectMLEmptyDir(t *testing.T) {
	ctx := newTestContext(t, 2)
	recs, err := pipeline.CollectML(ctx, "never-written")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records from an empty directory", len(recs))
	}
}

func TestMalformedRecordsAreDropped(t *testing.T) {
	prep, sv := makeSurveyData(t, 8, 1)
	// Corrupt a handful of data lines; the driver's parse guards must drop
	// them without failing the job.
	prep.DataLines[3] = "PALFA,not,enough,fields"
	prep.DataLines[4] = "garbage line with no commas at all"
	ctx := newTestContext(t, 2)
	if err := prep.Upload(ctx.FS, "spe.csv", "clusters.csv"); err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
		DataFile: "spe.csv", ClusterFile: "clusters.csv", OutDir: "ml",
		Feat: featConfig(sv),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 {
		t.Error("corruption of two lines wiped out the whole job")
	}
}

func TestUploadTwiceFails(t *testing.T) {
	prep, _ := makeSurveyData(t, 9, 1)
	ctx := newTestContext(t, 2)
	if err := prep.Upload(ctx.FS, "a.csv", "b.csv"); err != nil {
		t.Fatal(err)
	}
	if err := prep.Upload(ctx.FS, "a.csv", "b.csv"); err == nil {
		t.Error("HDFS overwrite silently accepted")
	}
}
