// Package pipeline wires the paper's four-stage scientific workflow
// (Figure 2): preprocessing observations into SPE and cluster files,
// uploading them to HDFS, running the distributed D-RAPID identification
// job (Figure 3), and collecting the ML files that feed classification.
//
// The per-cluster search work lives here so that the distributed driver
// and the multithreaded baseline execute the *same* code path and can be
// checked against each other record-for-record.
package pipeline

import (
	"fmt"
	"strconv"
	"strings"

	"drapid/internal/core"
	"drapid/internal/features"
	"drapid/internal/spe"
)

// MLRecord is one line of the ML files D-RAPID writes back to HDFS: the
// observation key, the source cluster, the pulse's rank within it, and the
// 22 extracted features.
type MLRecord struct {
	Key       string
	ClusterID int
	PulseRank int
	Vec       features.Vector
}

// MLHeader is the header line of ML files.
var MLHeader = "# key,cluster,pulserank," + strings.ToLower(strings.Join(features.Names[:], ","))

// Format renders the record as a CSV line.
func (r MLRecord) Format() string {
	var b strings.Builder
	b.Grow(32 + features.Count*12)
	b.WriteString(r.Key)
	fmt.Fprintf(&b, ",%d,%d", r.ClusterID, r.PulseRank)
	for _, v := range r.Vec {
		fmt.Fprintf(&b, ",%.6g", v)
	}
	return b.String()
}

// ParseMLRecord parses a line produced by Format.
func ParseMLRecord(line string) (MLRecord, error) {
	f := strings.Split(line, ",")
	// Keys contain no commas (colon-joined), so the layout is fixed.
	want := 3 + features.Count
	if len(f) != want {
		return MLRecord{}, fmt.Errorf("pipeline: ML record needs %d fields, got %d", want, len(f))
	}
	var r MLRecord
	r.Key = f[0]
	var err error
	if r.ClusterID, err = strconv.Atoi(f[1]); err != nil {
		return MLRecord{}, fmt.Errorf("pipeline: bad cluster id: %w", err)
	}
	if r.PulseRank, err = strconv.Atoi(f[2]); err != nil {
		return MLRecord{}, fmt.Errorf("pipeline: bad pulse rank: %w", err)
	}
	for i := 0; i < features.Count; i++ {
		if r.Vec[i], err = strconv.ParseFloat(f[3+i], 64); err != nil {
			return MLRecord{}, fmt.Errorf("pipeline: bad feature %s: %w", features.Names[i], err)
		}
	}
	return r, nil
}

// WorkStats reports the compute-relevant volume of one key group's search,
// which the cost models price.
type WorkStats struct {
	// SPEsSearched sums the events examined across clusters (with the
	// observation parsed once and re-used, as both drivers do).
	SPEsSearched int
	// EventsParsed is the observation's SPE payload count.
	EventsParsed int
	// Pulses is the number of single pulses identified.
	Pulses int
}

// ProcessKeyGroup runs the D-RAPID search phase for one observation key:
// parse the observation's SPE payloads once, then for every cluster payload
// select the member events, search them, and extract features. This is the
// body of the "Search" phase of Figure 3.
func ProcessKeyGroup(key string, clusterPayloads, dataPayloads []string, p core.Params, cfg features.Config) ([]MLRecord, WorkStats, error) {
	var stats WorkStats
	if len(clusterPayloads) == 0 {
		return nil, stats, nil
	}
	events := make([]spe.SPE, 0, len(dataPayloads))
	for _, payload := range dataPayloads {
		e, err := spe.ParseDataPayload(payload)
		if err != nil {
			return nil, stats, err
		}
		events = append(events, e)
	}
	stats.EventsParsed = len(events)
	spe.SortByDM(events)

	var out []MLRecord
	for _, payload := range clusterPayloads {
		cl, err := spe.ParseClusterPayload(payload)
		if err != nil {
			return nil, stats, err
		}
		member := selectMembers(events, cl)
		stats.SPEsSearched += len(member)
		pulses := core.Search(member, p)
		stats.Pulses += len(pulses)
		for _, pl := range pulses {
			out = append(out, MLRecord{
				Key:       key,
				ClusterID: cl.ID,
				PulseRank: pl.Rank,
				Vec:       features.Extract(member, pl, cl, cfg),
			})
		}
	}
	return out, stats, nil
}

// selectMembers returns the DM-sorted events inside the cluster's bounding
// box. events must already be DM-sorted; the result shares no storage with
// future calls.
func selectMembers(events []spe.SPE, cl *spe.Cluster) []spe.SPE {
	lo := searchDM(events, cl.DMMin)
	var member []spe.SPE
	for i := lo; i < len(events) && events[i].DM <= cl.DMMax; i++ {
		if events[i].Time >= cl.TMin && events[i].Time <= cl.TMax {
			member = append(member, events[i])
		}
	}
	return member
}

// searchDM finds the first index with DM >= dm in DM-sorted events.
func searchDM(events []spe.SPE, dm float64) int {
	lo, hi := 0, len(events)
	for lo < hi {
		mid := (lo + hi) / 2
		if events[mid].DM < dm {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
