package pipeline_test

import (
	"context"
	"testing"

	"drapid/internal/dbscan"
	"drapid/internal/pipeline"
	"drapid/internal/rdd"
)

// TestParallelMatchesSerial is the executor's equivalence oracle: the same
// job run on the serial reference path (Workers = 1) and on a wide worker
// pool must produce record-for-record identical ML output — and, because
// the cost model prices work metrics rather than host timing, identical
// simulated elapsed time too.
func TestParallelMatchesSerial(t *testing.T) {
	prep, sv := makeSurveyData(t, 7, 3)

	run := func(workers int) (pipeline.JobResult, []pipeline.MLRecord) {
		ctx := newTestContext(t, 4)
		ctx.Exec.Workers = workers
		if err := prep.Upload(ctx.FS, "spe.csv", "clusters.csv"); err != nil {
			t.Fatal(err)
		}
		res, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
			DataFile: "spe.csv", ClusterFile: "clusters.csv", OutDir: "ml",
			Feat: featConfig(sv),
		})
		if err != nil {
			t.Fatal(err)
		}
		recs, err := pipeline.CollectML(ctx, "ml")
		if err != nil {
			t.Fatal(err)
		}
		return res, recs
	}

	serialRes, serialRecs := run(1)
	parallelRes, parallelRecs := run(8)

	if serialRes.Records == 0 {
		t.Fatal("serial run produced no records; fixture too small")
	}
	if len(serialRecs) != len(parallelRecs) {
		t.Fatalf("record counts differ: serial %d vs parallel %d", len(serialRecs), len(parallelRecs))
	}
	// Same order, not just same multiset: partition layout and within-
	// partition key order are worker-count independent.
	for i := range serialRecs {
		if s, p := serialRecs[i].Format(), parallelRecs[i].Format(); s != p {
			t.Fatalf("record %d differs:\n serial:   %s\n parallel: %s", i, s, p)
		}
	}
	if serialRes.SimSeconds != parallelRes.SimSeconds {
		t.Errorf("simulated clocks diverge with worker count: serial %g vs parallel %g",
			serialRes.SimSeconds, parallelRes.SimSeconds)
	}
	if parallelRes.WallSeconds <= 0 {
		t.Error("parallel run measured no wall-clock time")
	}
}

// TestRunDRAPIDEmptyInput runs the whole job over header-only files: no
// keys, no clusters, no output — and no error.
func TestRunDRAPIDEmptyInput(t *testing.T) {
	prep := pipeline.Prepare(nil, nil, dbscan.DefaultParams())
	ctx := newTestContext(t, 2)
	if err := prep.Upload(ctx.FS, "spe.csv", "clusters.csv"); err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
		DataFile: "spe.csv", ClusterFile: "clusters.csv", OutDir: "ml",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 {
		t.Errorf("empty input produced %d records", res.Records)
	}
	recs, err := pipeline.CollectML(ctx, "ml")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("collected %d records from an empty job", len(recs))
	}
}

// TestRunDRAPIDCancelled verifies context-based cancellation surfaces as
// the job error instead of a partial silent result.
func TestRunDRAPIDCancelled(t *testing.T) {
	prep, sv := makeSurveyData(t, 8, 1)
	ctx := newTestContext(t, 2)
	if err := prep.Upload(ctx.FS, "spe.csv", "clusters.csv"); err != nil {
		t.Fatal(err)
	}
	gctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx.SetContext(gctx)
	_, err := pipeline.RunDRAPID(ctx, pipeline.JobConfig{
		DataFile: "spe.csv", ClusterFile: "clusters.csv", OutDir: "ml",
		Feat: featConfig(sv),
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWorkersExceedKeyCount: a pool far wider than the key space must not
// lose or duplicate records.
func TestWorkersExceedKeyCount(t *testing.T) {
	prep, sv := makeSurveyData(t, 9, 1) // one observation → one join key
	base := newTestContext(t, 2)
	if err := prep.Upload(base.FS, "spe.csv", "clusters.csv"); err != nil {
		t.Fatal(err)
	}
	base.Exec = rdd.ExecConfig{Workers: 32, SimClock: true}
	res, err := pipeline.RunDRAPID(base, pipeline.JobConfig{
		DataFile: "spe.csv", ClusterFile: "clusters.csv", OutDir: "ml",
		Feat: featConfig(sv),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := pipeline.CollectML(base, "ml")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Records {
		t.Fatalf("collected %d records, job reported %d", len(recs), res.Records)
	}
}
