package rapidmt

import (
	"math/rand"
	"testing"

	"drapid/internal/core"
	"drapid/internal/dbscan"
	"drapid/internal/features"
	"drapid/internal/pipeline"
	"drapid/internal/rdd"
	"drapid/internal/spe"
	"drapid/internal/synth"
)

func fixture(t *testing.T) (*pipeline.Prepared, features.Config) {
	t.Helper()
	sv := synth.PALFA()
	sv.TobsSec = 10
	gen := synth.NewGenerator(sv, 9)
	rng := rand.New(rand.NewSource(10))
	var obs []spe.Observation
	for i := 0; i < 6; i++ {
		mix := synth.Sources{NumImpulseRFI: 1, NumFlatRFI: 2, NumNoise: 200}
		if i%2 == 0 {
			mix.Pulsars = []synth.Pulsar{synth.RandomPulsar(rng, synth.AnyBand, synth.AnyBrightness, false)}
		}
		o, _ := gen.Observe(gen.NextKey(), mix)
		obs = append(obs, o)
	}
	prep := pipeline.Prepare(obs, sv.Grid, dbscan.DefaultParams())
	return prep, features.Config{Grid: sv.Grid, BandMHz: sv.BandMHz, FreqGHz: sv.FreqGHz}
}

func run(t *testing.T, prep *pipeline.Prepared, fc features.Config, threads int) Result {
	t.Helper()
	res, err := Run(prep.DataLines, prep.ClusterLines, threads, PaperWorkstation(),
		rdd.DefaultCostModel(), core.DefaultParams(), fc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProducesRecords(t *testing.T) {
	prep, fc := fixture(t)
	res := run(t, prep, fc, 4)
	if res.Records == 0 || len(res.ML) != res.Records {
		t.Fatalf("records=%d ml=%d", res.Records, len(res.ML))
	}
	if res.SimSeconds <= 0 {
		t.Error("no simulated time")
	}
	if res.WallSeconds <= 0 {
		t.Error("no wall-clock time measured")
	}
}

func TestOutputIndependentOfThreads(t *testing.T) {
	prep, fc := fixture(t)
	a := run(t, prep, fc, 1)
	b := run(t, prep, fc, 16)
	if a.Records != b.Records {
		t.Fatalf("thread count changed results: %d vs %d", a.Records, b.Records)
	}
	for i := range a.ML {
		if a.ML[i].Format() != b.ML[i].Format() {
			t.Fatalf("record %d differs across thread counts", i)
		}
	}
}

func TestMoreThreadsHelpUntilCapacity(t *testing.T) {
	prep, fc := fixture(t)
	t1 := run(t, prep, fc, 1).SimSeconds
	t2 := run(t, prep, fc, 2).SimSeconds
	if !(t2 < t1) {
		t.Errorf("2 threads (%g) not faster than 1 (%g)", t2, t1)
	}
	// Beyond the memory-bandwidth ceiling extra threads stop helping.
	t10 := run(t, prep, fc, 10).SimSeconds
	t20 := run(t, prep, fc, 20).SimSeconds
	if t20 < t10*0.8 {
		t.Errorf("threads beyond capacity still scaling: %g -> %g", t10, t20)
	}
}

func TestCapacityModel(t *testing.T) {
	m := PaperWorkstation()
	if got := m.capacity(); got != m.MemBWCores {
		t.Errorf("capacity = %g, want bandwidth ceiling %g", got, m.MemBWCores)
	}
	if got := m.effectiveParallelism(1); got != 1 {
		t.Errorf("effectiveParallelism(1) = %g", got)
	}
	if got := m.contention(1); got != 1 {
		t.Errorf("contention(1) = %g", got)
	}
	if got := m.contention(20); got <= 1 {
		t.Errorf("contention(20) = %g, want > 1", got)
	}
	unbounded := Machine{Cores: 4, HTBoost: 1, CPUFactor: 1}
	if got := unbounded.capacity(); got != 4 {
		t.Errorf("capacity without ceiling = %g, want 4", got)
	}
}

func TestHeaderAndGarbageLinesSkipped(t *testing.T) {
	prep, fc := fixture(t)
	prep.DataLines = append([]string{"# junk header", "not,a,record"}, prep.DataLines...)
	res := run(t, prep, fc, 2)
	if res.Records == 0 {
		t.Error("garbage lines broke the run")
	}
}
