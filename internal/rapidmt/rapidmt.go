// Package rapidmt is the multithreaded single-machine baseline of RQ 2
// (the paper's RAPID-MT, §5.1.2): the same single-pulse search D-RAPID
// distributes, run on one workstation. It is a thin configuration of the
// same concurrent executor the distributed engine uses — rdd.RunParallel
// with Workers set to the requested thread count — executing the identical
// per-key code path (pipeline.ProcessKeyGroup), so its outputs can be
// compared record-for-record against the distributed job. Alongside the
// real execution, elapsed time is also *simulated* with a single-machine
// cost model — one shared disk, a fixed physical core count that caps
// useful parallelism, and no cluster memory to spill into — which is what
// the Figure 4 thread sweep plots.
package rapidmt

import (
	"context"
	"sort"
	"time"

	"drapid/internal/core"
	"drapid/internal/des"
	"drapid/internal/features"
	"drapid/internal/pipeline"
	"drapid/internal/rdd"
	"drapid/internal/spe"
)

// Machine models the baseline workstation.
type Machine struct {
	// Cores is the physical core count; threads beyond it contend.
	Cores int
	// HTBoost is the extra throughput hyper-threading buys when the
	// thread count exceeds Cores (1.0 = none).
	HTBoost float64
	// CPUFactor scales per-unit compute cost relative to the cluster
	// nodes the rdd cost model is calibrated to (>1 = faster CPU).
	CPUFactor float64
	// MemBWCores caps the *useful* parallelism of this scan-heavy
	// workload on a single-socket desktop: every worker streams SPE data
	// through one memory controller, so throughput ceilings well below
	// the core count (the cluster's executors each bring their own
	// memory, which is the structural advantage RQ 2 measures). Zero
	// disables the ceiling.
	MemBWCores float64
	// DiskMBps is the single local disk all threads share.
	DiskMBps float64
	// MemMB is installed memory; the 10.2 GB test set fits in the paper's
	// 16 GB workstation, so no spill modelling is needed here.
	MemMB int
	// ThreadOverheadSec charges context-switch/queue overhead per task.
	ThreadOverheadSec float64
}

// PaperWorkstation reproduces the paper's baseline host: an i7-7800K
// (6 cores / 12 threads) overclocked to 4.5 GHz with 16 GB of RAM — a
// substantially faster single CPU than any cluster node, but a single
// memory domain.
func PaperWorkstation() Machine {
	return Machine{
		Cores:             6,
		HTBoost:           1.25,
		CPUFactor:         1.5,
		MemBWCores:        2.0,
		DiskMBps:          130,
		MemMB:             16384,
		ThreadOverheadSec: 0.0002,
	}
}

// Result summarises one run.
type Result struct {
	// SimSeconds is the simulated elapsed time.
	SimSeconds float64
	// WallSeconds is the measured host wall-clock time of the search phase.
	WallSeconds float64
	// Records is the number of ML records produced.
	Records int
	// ML holds the produced records (same format as the distributed job).
	ML []pipeline.MLRecord
}

// Run executes the multithreaded RAPID search over the raw data and
// cluster file lines with the requested thread count: one executor-pool
// work item per observation key, really running threads-wide
// (rdd.RunParallel). CPU cost constants are shared with the distributed
// cost model so the two implementations are priced consistently, and the
// ML output is deterministic — identical for any thread count.
func Run(dataLines, clusterLines []string, threads int, m Machine, cost rdd.CostModel, params core.Params, feat features.Config) (Result, error) {
	if threads < 1 {
		threads = 1
	}
	if params.Weight == 0 {
		params = core.DefaultParams()
	}

	// Group both inputs by observation key (the single-machine program
	// reads everything into maps up front).
	dataByKey := make(map[string][]string)
	clustersByKey := make(map[string][]string)
	var keys []string
	var dataBytes int64
	for _, line := range dataLines {
		dataBytes += int64(len(line)) + 1
		if spe.IsHeader(line) {
			continue
		}
		k, payload, err := spe.SplitKeyed(line)
		if err != nil {
			continue
		}
		dataByKey[k] = append(dataByKey[k], payload)
	}
	for _, line := range clusterLines {
		dataBytes += int64(len(line)) + 1
		if spe.IsHeader(line) {
			continue
		}
		k, payload, err := spe.SplitKeyed(line)
		if err != nil {
			continue
		}
		if _, ok := clustersByKey[k]; !ok {
			keys = append(keys, k)
		}
		clustersByKey[k] = append(clustersByKey[k], payload)
	}
	sort.Strings(keys)

	// Real execution: the same executor pool as the distributed job, one
	// work item per observation key, threads goroutines wide. Each item
	// parses its observation once and records per-cluster search volumes so
	// the simulated task pool can schedule at cluster granularity (the unit
	// the multithreaded program parallelizes over). Per-key results land in
	// key-indexed slots and are folded back in key order, so the output is
	// identical to a serial run.
	var result Result
	type keyWork struct {
		recs        []pipeline.MLRecord
		parsed      int64
		clusterSPEs []int
		err         error
	}
	work := make([]keyWork, len(keys))
	wallStart := time.Now()
	// A parse error cancels the pool so remaining keys are not searched
	// (fail-fast, as the serial loop did); in-flight items finish.
	gctx, abort := context.WithCancel(context.Background())
	defer abort()
	_ = rdd.RunParallel(gctx, rdd.ExecConfig{Workers: threads}, len(keys), func(i int) {
		k := keys[i]
		recs, stats, err := pipeline.ProcessKeyGroup(k, clustersByKey[k], dataByKey[k], params, feat)
		if err != nil {
			work[i].err = err
			abort()
			return
		}
		work[i].recs = recs
		work[i].parsed = int64(stats.EventsParsed)
		// Recover per-cluster sizes for scheduling skew: the searched SPE
		// total distributes over this key's clusters.
		events := make([]spe.SPE, 0, len(dataByKey[k]))
		for _, payload := range dataByKey[k] {
			e, err := spe.ParseDataPayload(payload)
			if err != nil {
				continue
			}
			events = append(events, e)
		}
		spe.SortByDM(events)
		for _, cp := range clustersByKey[k] {
			cl, err := spe.ParseClusterPayload(cp)
			if err != nil {
				continue
			}
			n := 0
			for _, e := range events {
				if cl.Contains(e) {
					n++
				}
			}
			work[i].clusterSPEs = append(work[i].clusterSPEs, n)
		}
	})
	result.WallSeconds = time.Since(wallStart).Seconds()
	var parseRecords int64
	var clusterSPEs []int
	for _, w := range work {
		if w.err != nil {
			return Result{}, w.err
		}
		result.ML = append(result.ML, w.recs...)
		parseRecords += w.parsed
		clusterSPEs = append(clusterSPEs, w.clusterSPEs...)
	}
	result.Records = len(result.ML)

	// Simulated time. Phase A: the single disk streams both files in
	// serially — no thread helps here.
	var sim des.Simulator
	sim.Advance(float64(dataBytes) / (m.DiskMBps * 1e6))
	// Parsing and grouping the records is parallelizable up to the
	// machine's effective capacity.
	parseCPU := (float64(dataBytes)*cost.CPUPerByte + float64(parseRecords)*cost.CPUPerRecord) / m.CPUFactor
	sim.Advance(parseCPU / m.effectiveParallelism(threads))

	// Phase B: one task per cluster on the thread pool. Oversubscribed or
	// bandwidth-starved threads slow each other down by the contention
	// factor; the cluster-size skew (median 19 SPEs, max thousands)
	// produces the stragglers the paper discusses under RQ 1.
	contention := m.contention(threads)
	pool := des.NewSlotPool(threads, sim.Now(), nil)
	for _, n := range clusterSPEs {
		cpu := float64(n) * cost.SearchPerSPE / m.CPUFactor
		pool.Assign(cpu*contention + m.ThreadOverheadSec)
	}
	result.SimSeconds = pool.MaxEnd()
	return result, nil
}

// capacity is the machine's useful parallelism for this workload: core
// count (with hyper-threading headroom) clipped by the memory-bandwidth
// ceiling.
func (m Machine) capacity() float64 {
	c := float64(m.Cores)
	if m.HTBoost > 1 {
		c *= m.HTBoost
	}
	if m.MemBWCores > 0 && m.MemBWCores < c {
		c = m.MemBWCores
	}
	return c
}

// effectiveParallelism is the useful concurrency for a requested thread
// count.
func (m Machine) effectiveParallelism(threads int) float64 {
	t := float64(threads)
	if c := m.capacity(); t > c {
		return c
	}
	return t
}

// contention is the slowdown each thread suffers when the pool exceeds the
// machine's capacity.
func (m Machine) contention(threads int) float64 {
	t := float64(threads)
	c := m.capacity()
	if t <= c {
		return 1
	}
	return t / c
}
