package sift

import (
	"strings"
	"testing"
)

// FuzzParseCatalog asserts the known-source catalog parser never panics on
// arbitrary input, and that any record it accepts survives a
// format-and-reparse round trip — the same interchange invariant the spe
// CSV parsers hold.
func FuzzParseCatalog(f *testing.F) {
	f.Add("B0531+21,56.7712,0.033392")
	f.Add(CatalogHeader + "\nJ1819-1458,196.0,4.26316\nFRB121102,557,")
	f.Add("")
	f.Add("name-only")
	f.Add(",,")
	f.Add("n,NaN,1")
	f.Add("n,1e999,1e999")
	f.Add(strings.Repeat(",", 4))
	f.Fuzz(func(t *testing.T, text string) {
		cat, err := ParseCatalog(strings.NewReader(text))
		if err != nil {
			return
		}
		for _, e := range cat {
			back, err := ParseCatalogLine(FormatCatalogEntry(e))
			if err != nil {
				t.Fatalf("accepted entry does not round trip: %+v → %v", e, err)
			}
			if back.Name != e.Name {
				t.Fatalf("name drifted through round trip: %q → %q", e.Name, back.Name)
			}
		}
		// Matching must tolerate whatever survived parsing.
		src := []Source{{ID: 1, DM: 56.9}}
		MatchCatalog(src, cat, Params{})
	})
}
