package sift

import (
	"fmt"
	"os"
	"testing"

	"drapid/internal/benchjson"
)

// BenchmarkSift measures the sifting backend — group rating, canonical
// ranking, and repeat-source cross-matching — over a ~10⁵-event synthetic
// observation. The natural unit is events, so the series reports events/s
// (also written to BENCH_sps.json as events_per_s) rather than MB/s.

var benchOut = benchjson.NewCollector("")

func TestMain(m *testing.M) {
	code := m.Run()
	if err := benchOut.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// benchFixture builds the measurement workload once: ~10⁵ events across
// repeat sources, one-off pulses, RFI, and chance groups. -short shrinks it
// so the CI smoke step stays fast.
func benchFixture(b *testing.B) *Fixture {
	b.Helper()
	cfg := FixtureConfig{Seed: 7, RFI: 4000, Noise: 2000}
	trains, perTrain, singles := 150, 50, 3000
	if testing.Short() {
		cfg.RFI, cfg.Noise = 400, 200
		trains, perTrain, singles = 15, 50, 300
	}
	for i := 0; i < trains; i++ {
		cfg.Trains = append(cfg.Trains, FixtureTrain{
			DM:        20 + float64(i*37%900),
			StartSec:  0.1 * float64(i%10),
			PeriodSec: 0.25 + 0.01*float64(i%40),
			Count:     perTrain,
			SNR:       9 + float64(i%12),
		})
	}
	for i := 0; i < singles; i++ {
		cfg.Singles = append(cfg.Singles, FixtureTrain{
			DM:       10 + float64(i*13%950),
			StartSec: 0.01 * float64(i),
			SNR:      8 + float64(i%18),
		})
	}
	f := NewFixture(cfg)
	if !testing.Short() && f.NumEvents < 100_000 {
		b.Fatalf("bench fixture has %d events, want >= 100000", f.NumEvents)
	}
	return f
}

func BenchmarkSift(b *testing.B) {
	f := benchFixture(b)
	p := Params{}.withDefaults()
	catalog := []CatalogEntry{
		{Name: "B0531+21", DM: 56.7712, PeriodSec: 0.033392},
		{Name: "J1819-1458", DM: 196.0, PeriodSec: 4.26316},
		{Name: "FRB121102", DM: 557.0},
	}
	record := func(b *testing.B, stage string) {
		b.Helper()
		events := float64(f.NumEvents)
		b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		benchOut.Record(benchjson.Entry{
			Name:       "BenchmarkSift/stage=" + stage,
			NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			N:          b.N,
			EventsPerS: events * float64(b.N) / b.Elapsed().Seconds(),
		})
	}
	var ranked []Group
	b.Run("stage=rank", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ranked = f.Build(p)
		}
		record(b, "rank")
	})
	if ranked == nil {
		ranked = f.Build(p)
	}
	b.Run("stage=sources", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srcs := Sources(ranked, p)
			MatchCatalog(srcs, catalog, p)
		}
		record(b, "sources")
	})
}
