package sift

import (
	"math"
	"math/rand"

	"drapid/internal/spe"
)

// Label is the ground-truth class of a fixture group.
type Label int

const (
	// LabelNoise marks a chance-coincidence group.
	LabelNoise Label = iota
	// LabelRFI marks a zero-DM interference group.
	LabelRFI
	// LabelPulse marks a genuinely dispersed pulse group.
	LabelPulse
)

// String names the label in golden files and test logs.
func (l Label) String() string {
	switch l {
	case LabelNoise:
		return "noise"
	case LabelRFI:
		return "rfi"
	case LabelPulse:
		return "pulse"
	default:
		return "?"
	}
}

// FixtureTrain describes one repeating source the fixture injects: Count
// pulses at a fixed DM, spaced PeriodSec apart from StartSec, each with a
// peak SNR near SNR.
type FixtureTrain struct {
	DM        float64
	StartSec  float64
	PeriodSec float64
	Count     int
	SNR       float64
}

// FixtureGroup is one labeled group of the fixture: the member events plus
// the ground truth the generator built them from.
type FixtureGroup struct {
	Members []spe.SPE
	Label   Label
	// Train is the 1-based injected-train index for LabelPulse groups that
	// belong to a repeat source; 0 otherwise.
	Train int
	// DM is the true dispersion measure (pulse groups only).
	DM float64
}

// FixtureConfig sizes a synthetic sifting workload.
type FixtureConfig struct {
	Seed int64
	// Trains are the injected repeat sources.
	Trains []FixtureTrain
	// Singles injects one-off pulses at these (DM, SNR) pairs, spread over
	// the observation.
	Singles []FixtureTrain
	// RFI and Noise count the zero-DM interference and chance-coincidence
	// groups to inject.
	RFI   int
	Noise int
	// DMStep is the trial grid spacing the event synthesis assumes
	// (default 1 pc cm⁻³).
	DMStep float64
}

// Fixture is a ground-truthed sifting workload: labeled groups whose
// member events mimic what the detect frontend hands the DBSCAN stage.
type Fixture struct {
	Key    spe.Key
	Groups []FixtureGroup
	// NumEvents is the total member count across groups.
	NumEvents int
}

// NewFixture renders the configured workload deterministically from the
// seed. Pulse groups get the matched-filter SNR-vs-DM silhouette a real
// dispersed pulse produces (a smooth peak at the true DM falling toward
// both edges); RFI groups slope down from a zero-DM maximum; noise groups
// are a handful of faint scattered events.
func NewFixture(cfg FixtureConfig) *Fixture {
	step := cfg.DMStep
	if step == 0 {
		step = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Fixture{Key: spe.Key{Dataset: "SIFTFIX", MJD: 58000}}

	pulse := func(dm, t, snr float64, train int) {
		// Matched-filter falloff over ±6 trials: snr(k) = peak/(1+(k/3)²),
		// keeping only events a threshold-6 search would report.
		var members []spe.SPE
		for k := -6; k <= 6; k++ {
			s := snr / (1 + float64(k*k)/9)
			if s < 6 {
				continue
			}
			trialDM := dm + float64(k)*step
			if trialDM < 0 {
				continue
			}
			members = append(members, spe.SPE{
				DM:       trialDM,
				SNR:      math.Round(s*1000) / 1000,
				Time:     t + rng.Float64()*1e-4,
				Sample:   int64(t / 256e-6),
				Downfact: 4,
			})
		}
		f.Groups = append(f.Groups, FixtureGroup{Members: members, Label: LabelPulse, Train: train, DM: dm})
		f.NumEvents += len(members)
	}

	for ti, tr := range cfg.Trains {
		for i := 0; i < tr.Count; i++ {
			snr := tr.SNR * (0.85 + 0.3*rng.Float64())
			pulse(tr.DM, tr.StartSec+float64(i)*tr.PeriodSec, snr, ti+1)
		}
	}
	for _, s := range cfg.Singles {
		pulse(s.DM, s.StartSec, s.SNR, 0)
	}
	for i := 0; i < cfg.RFI; i++ {
		t := 0.5 + rng.Float64()*10
		amp := 15 + rng.Float64()*20
		var members []spe.SPE
		for k := 0; k < 8; k++ {
			s := amp * (1 - float64(k)/9)
			if s < 6 {
				continue
			}
			members = append(members, spe.SPE{
				DM:       float64(k) * step,
				SNR:      math.Round(s*1000) / 1000,
				Time:     t,
				Sample:   int64(t / 256e-6),
				Downfact: 8,
			})
		}
		f.Groups = append(f.Groups, FixtureGroup{Members: members, Label: LabelRFI})
		f.NumEvents += len(members)
	}
	for i := 0; i < cfg.Noise; i++ {
		t := rng.Float64() * 12
		n := 2 + rng.Intn(3)
		var members []spe.SPE
		for k := 0; k < n; k++ {
			members = append(members, spe.SPE{
				DM:       math.Round(rng.Float64()*280/step) * step,
				SNR:      math.Round((6+rng.Float64())*1000) / 1000,
				Time:     t + rng.Float64()*0.05,
				Sample:   int64(t / 256e-6),
				Downfact: 1,
			})
		}
		f.Groups = append(f.Groups, FixtureGroup{Members: members, Label: LabelNoise})
		f.NumEvents += len(members)
	}
	return f
}

// Build runs the sifter over every fixture group (ids in fixture order)
// and returns the groups in canonical ranked order.
func (f *Fixture) Build(p Params) []Group {
	out := make([]Group, len(f.Groups))
	for i, fg := range f.Groups {
		out[i] = Build(i, f.Key, fg.Members, p)
	}
	SortGroups(out)
	return out
}
