package sift

import (
	"fmt"
	"sort"

	"drapid/internal/spe"
)

// Rank is a group's position on the sifting ladder. Higher is better; the
// ladder is ordinal, so ranked output sorts by Rank first and SNR second.
type Rank int

const (
	// RankNoise marks groups too small or too faint (against the
	// DM-dependent floor) to be anything but chance coincidences.
	RankNoise Rank = iota
	// RankRFI marks groups whose SNR peaks at (or indistinguishably near)
	// zero DM: broadband terrestrial interference, not a dispersed pulse.
	RankRFI
	// RankFair clears the size and SNR floors but has a flat or
	// edge-peaked SNR-vs-DM shape, so the dedispersion sweep never found a
	// distinct optimum.
	RankFair
	// RankGood peaks in the central DM bins, above both edges — the
	// matched-filter signature of a real dispersed pulse.
	RankGood
	// RankStrong is Good with both edges falling below FracSigma of the
	// peak: the SNR climb-and-fall a bright single pulse produces.
	RankStrong
	// RankExcellent is Strong at high significance (SNRMax ≥ StrongSNR).
	RankExcellent
)

// String names the rank for tables and JSON documents.
func (r Rank) String() string {
	switch r {
	case RankNoise:
		return "noise"
	case RankRFI:
		return "rfi"
	case RankFair:
		return "fair"
	case RankGood:
		return "good"
	case RankStrong:
		return "strong"
	case RankExcellent:
		return "excellent"
	default:
		return fmt.Sprintf("Rank(%d)", int(r))
	}
}

// Params tunes the sifting heuristics. The zero value of every field takes
// the documented default, so Params{} is usable as-is.
type Params struct {
	// MinGroup is the smallest member count a group needs to escape
	// RankNoise. Default 5: the detect grids here are far coarser than the
	// survey plans Karako's MIN_GROUP=50 was tuned on, so a real pulse
	// crosses fewer trials.
	MinGroup int
	// MinSNR is the base SNR floor. Groups peaking below the DM-dependent
	// floor derived from it rank as noise. Default 7.
	MinSNR float64
	// RFIDM bounds the zero-DM interference zone: a group whose best event
	// sits at DM ≤ RFIDM ranks as RFI. Default 2 pc cm⁻³ (Karako's
	// CLOSE_DM). Within LowDMBoostSpan×RFIDM the SNR floor is raised by
	// LowDMBoost, since weak low-DM groups are overwhelmingly terrestrial.
	RFIDM float64
	// FracSigma is the edge falloff fraction for RankStrong: both edge
	// bins must stay at or below FracSigma × peak. Default 0.9 (Karako's
	// FRACTIONAL_SIGMA).
	FracSigma float64
	// StrongSNR is the significance gate promoting RankStrong to
	// RankExcellent. Default 12.
	StrongSNR float64
	// CloseDM is the base DM tolerance for cross-matching detections of
	// the same source; the effective window widens with dmTier, mirroring
	// the survey DDplan spacing. Default 2 pc cm⁻³.
	CloseDM float64
	// CatalogDM is the DM tolerance for known-source catalog matches.
	// Default 3 pc cm⁻³.
	CatalogDM float64
}

// Default parameter values (see the Params field docs).
const (
	DefaultMinGroup  = 5
	DefaultMinSNR    = 7.0
	DefaultRFIDM     = 2.0
	DefaultFracSigma = 0.9
	DefaultStrongSNR = 12.0
	DefaultCloseDM   = 2.0
	DefaultCatalogDM = 3.0

	// lowDMBoost raises the SNR floor inside the low-DM interference zone
	// (DM ≤ lowDMBoostSpan × RFIDM): faint low-DM groups are almost always
	// terrestrial, so they must be brighter to clear the floor.
	lowDMBoost     = 1.25
	lowDMBoostSpan = 5.0

	// shapeBins is the number of DM-ordered bins the SNR-shape test uses,
	// matching the five subgroups of Karako's ladder.
	shapeBins = 5
)

// withDefaults resolves zero fields.
func (p Params) withDefaults() Params {
	if p.MinGroup == 0 {
		p.MinGroup = DefaultMinGroup
	}
	if p.MinSNR == 0 {
		p.MinSNR = DefaultMinSNR
	}
	if p.RFIDM == 0 {
		p.RFIDM = DefaultRFIDM
	}
	if p.FracSigma == 0 {
		p.FracSigma = DefaultFracSigma
	}
	if p.StrongSNR == 0 {
		p.StrongSNR = DefaultStrongSNR
	}
	if p.CloseDM == 0 {
		p.CloseDM = DefaultCloseDM
	}
	if p.CatalogDM == 0 {
		p.CatalogDM = DefaultCatalogDM
	}
	return p
}

// Validate rejects parameter values the heuristics cannot run with.
func (p Params) Validate() error {
	if p.MinGroup < 0 {
		return fmt.Errorf("sift: MinGroup must be >= 0, got %d", p.MinGroup)
	}
	for name, v := range map[string]float64{
		"MinSNR": p.MinSNR, "RFIDM": p.RFIDM, "FracSigma": p.FracSigma,
		"StrongSNR": p.StrongSNR, "CloseDM": p.CloseDM, "CatalogDM": p.CatalogDM,
	} {
		if v < 0 {
			return fmt.Errorf("sift: %s must be >= 0, got %g", name, v)
		}
	}
	if p.FracSigma > 1 {
		return fmt.Errorf("sift: FracSigma must be <= 1, got %g", p.FracSigma)
	}
	return nil
}

// dmTier mirrors a survey DDplan's downsampling ladder: trial spacing (and
// with it every DM tolerance) widens as DM grows, so cross-matching windows
// scale by the tier instead of staying fixed (Karako's dmthreshold).
func dmTier(dm float64) float64 {
	switch {
	case dm <= 212.8:
		return 1
	case dm <= 443.2:
		return 2
	case dm <= 543.4:
		return 3
	case dm <= 876.4:
		return 5
	case dm <= 990.4:
		return 6
	default:
		return 10
	}
}

// snrFloor is the DM-dependent acceptance threshold a group's best SNR
// must clear to escape RankNoise.
func (p Params) snrFloor(dm float64) float64 {
	if dm <= lowDMBoostSpan*p.RFIDM {
		return p.MinSNR * lowDMBoost
	}
	return p.MinSNR
}

// Group is one sifted DBSCAN cluster: the compact, mode-independent record
// the ranked views are built from. Everything here derives from the member
// events alone, which is what keeps the batch and streaming detect paths
// byte-identical (DESIGN.md §8.4).
type Group struct {
	// ID is the observation-unique DBSCAN cluster id.
	ID int `json:"id"`
	// Key identifies the observation.
	Key string `json:"key"`
	// N is the member event count.
	N int `json:"n"`
	// SNR, DM, Time and Width describe the group's best (peak) event.
	SNR   float64 `json:"snr"`
	DM    float64 `json:"dm"`
	Time  float64 `json:"time"`
	Width int     `json:"width"`
	// DMMin, DMMax, TMin and TMax bound the group.
	DMMin float64 `json:"dm_min"`
	DMMax float64 `json:"dm_max"`
	TMin  float64 `json:"t_min"`
	TMax  float64 `json:"t_max"`
	// Rank is the ladder rank Rate assigned.
	Rank Rank `json:"rank"`
}

// Score is the one-number ordering key of ranked output: the rank in the
// thousands digit and the peak SNR below it, so a single float sorts the
// ladder first and brightness second. (Survey SNRs live far below 1000.)
func (g Group) Score() float64 { return float64(g.Rank)*1000 + g.SNR }

// Build summarises and rates one DBSCAN cluster. Members may arrive in any
// order: every statistic is permutation-invariant (the peak is the
// max-SNR event with ties broken toward earlier time then lower DM, and
// the shape bins sort members by DM first).
func Build(id int, key spe.Key, members []spe.SPE, p Params) Group {
	p = p.withDefaults()
	g := Group{ID: id, Key: key.String(), N: len(members)}
	if len(members) == 0 {
		return g
	}
	best := members[0]
	g.DMMin, g.DMMax = members[0].DM, members[0].DM
	g.TMin, g.TMax = members[0].Time, members[0].Time
	for _, e := range members[1:] {
		if e.SNR > best.SNR ||
			(e.SNR == best.SNR && (e.Time < best.Time || (e.Time == best.Time && e.DM < best.DM))) {
			best = e
		}
		g.DMMin, g.DMMax = min(g.DMMin, e.DM), max(g.DMMax, e.DM)
		g.TMin, g.TMax = min(g.TMin, e.Time), max(g.TMax, e.Time)
	}
	g.SNR, g.DM, g.Time, g.Width = best.SNR, best.DM, best.Time, best.Downfact
	g.Rank = rate(g, members, p)
	return g
}

// rate walks the ladder bottom-up. The checks are ordered so that scaling
// every member SNR up can only move a group to an equal or higher rank
// (the monotonicity property TestRankMonotoneInSNR pins).
func rate(g Group, members []spe.SPE, p Params) Rank {
	if g.N < p.MinGroup || g.SNR < p.snrFloor(g.DM) {
		return RankNoise
	}
	if g.DM <= p.RFIDM {
		return RankRFI
	}
	bins := shapeProfile(members)
	peak, peakIdx := bins[0], 0
	for i, v := range bins[1:] {
		if v > peak {
			peak, peakIdx = v, i+1
		}
	}
	// A dispersed pulse's matched-filter response peaks strictly inside
	// the group's DM span; an edge peak means the optimum lies outside the
	// searched sweep (or the group is an interference slope).
	if peakIdx == 0 || peakIdx == shapeBins-1 || peak <= bins[0] || peak <= bins[shapeBins-1] {
		return RankFair
	}
	if bins[0] > p.FracSigma*peak || bins[shapeBins-1] > p.FracSigma*peak {
		return RankGood
	}
	if g.SNR < p.StrongSNR {
		return RankStrong
	}
	return RankExcellent
}

// shapeProfile splits the members into shapeBins DM-ordered bins and
// returns the max SNR per bin — the SNR-vs-DM silhouette the ladder's
// shape checks read. Sorting by (DM, Time) first makes the profile
// independent of input order.
func shapeProfile(members []spe.SPE) [shapeBins]float64 {
	sorted := make([]spe.SPE, len(members))
	copy(sorted, members)
	spe.SortByDM(sorted)
	var bins [shapeBins]float64
	for i, e := range sorted {
		b := i * shapeBins / len(sorted)
		if e.SNR > bins[b] {
			bins[b] = e.SNR
		}
	}
	return bins
}

// SortGroups orders groups into the canonical ranked order: descending
// Score, then ascending peak time, then ascending id. The comparator is a
// total order over distinct groups, so any partition of the observation
// (batch, or streaming segments) sorts to the same sequence.
func SortGroups(groups []Group) {
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		if a.Score() != b.Score() {
			return a.Score() > b.Score()
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.ID < b.ID
	})
}
