// Package sift is the post-classification sifting layer of the pipeline:
// it turns the flood of DBSCAN groups a survey search emits into a short,
// ranked list a human can actually inspect.
//
// Three stages compose:
//
//  1. Group ranking (Build/Rate): every DBSCAN cluster of single-pulse
//     events is placed on a rank ladder adapted from Karako's PRESTO
//     sifter — group-size and DM-dependent SNR floors weed out noise,
//     a zero-DM peak marks terrestrial interference, and the shape of
//     max-SNR across five DM bins separates the matched-filter peak of
//     a genuinely dispersed pulse from flat or edge-peaked junk.
//
//  2. Repeat-source detection (Sources): ranked groups are cross-matched
//     at consistent DM across the observation, brightest first, in the
//     style of tcoenen's ssps pulse-train finder. Each source reports its
//     detection count and best-SNR exemplar, so a repeating transient
//     shows up as one line, not thirty.
//
//  3. Known-source catalog matching (ParseCatalog/MatchCatalog): an
//     optional CSV catalog of name/DM/period annotates sources whose DM
//     falls inside the tolerance window of a known pulsar or RRAT.
//
// Every function is deterministic: ranking is invariant under permutation
// of a group's member events, and the comparator ordering ranked output is
// total, which is what lets the streaming detect path rank segment by
// segment and still emit exactly the batch ranking (DESIGN.md §8).
package sift
