package sift

import "sort"

// Source is one repeat source: the set of ranked groups whose peak DMs
// agree within the (DM-tier-widened) CloseDM window, cross-matched across
// the whole observation. A pulsar or repeating transient shows up as one
// Source with Detections > 1; a one-off burst as a single-detection source.
type Source struct {
	// ID is 1-based, assigned in output order (most detections first,
	// brightest first among ties).
	ID int `json:"id"`
	// DM is the exemplar's peak DM — the source's nominal dispersion
	// measure.
	DM float64 `json:"dm"`
	// Detections counts the member groups.
	Detections int `json:"detections"`
	// Best identifies the best-SNR exemplar group, with its SNR and
	// arrival time alongside.
	Best     int     `json:"best"`
	BestSNR  float64 `json:"best_snr"`
	BestTime float64 `json:"best_time"`
	// Known carries the catalog name when MatchCatalog found one.
	Known string `json:"known,omitempty"`
	// Groups lists the member group ids, in detection (time) order.
	Groups []int `json:"groups"`
}

// Sources cross-matches groups into repeat sources, in the style of the
// ssps pulse-train finder: take every group that still looks like a pulse
// (RankFair and above), walk them brightest-first, and attach each to the
// first source whose DM lies within the tier-widened CloseDM window —
// opening a new source when none matches. Brightest-first assignment makes
// the exemplar the anchor of its DM window instead of letting a faint
// outlier drag the window away. The result is deterministic for any input
// order of groups.
func Sources(groups []Group, p Params) []Source {
	p = p.withDefaults()
	cands := make([]Group, 0, len(groups))
	for _, g := range groups {
		if g.Rank >= RankFair {
			cands = append(cands, g)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.SNR != b.SNR {
			return a.SNR > b.SNR
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.ID < b.ID
	})

	var out []*Source
	for _, g := range cands {
		var best *Source
		for _, s := range out {
			win := p.CloseDM * dmTier(s.DM)
			if g.DM >= s.DM-win && g.DM <= s.DM+win {
				best = s
				break // sources are anchored brightest-first; first window hit wins
			}
		}
		if best == nil {
			out = append(out, &Source{DM: g.DM, Best: g.ID, BestSNR: g.SNR, BestTime: g.Time, Groups: []int{g.ID}})
			continue
		}
		best.Groups = append(best.Groups, g.ID)
	}

	sources := make([]Source, len(out))
	for i, s := range out {
		s.Detections = len(s.Groups)
		// Report members in arrival order: the pulse train as it happened.
		byTime := map[int]float64{}
		for _, g := range cands {
			byTime[g.ID] = g.Time
		}
		sort.Slice(s.Groups, func(a, b int) bool {
			if byTime[s.Groups[a]] != byTime[s.Groups[b]] {
				return byTime[s.Groups[a]] < byTime[s.Groups[b]]
			}
			return s.Groups[a] < s.Groups[b]
		})
		sources[i] = *s
	}
	sort.SliceStable(sources, func(i, j int) bool {
		a, b := sources[i], sources[j]
		if a.Detections != b.Detections {
			return a.Detections > b.Detections
		}
		if a.BestSNR != b.BestSNR {
			return a.BestSNR > b.BestSNR
		}
		return a.Best < b.Best
	})
	for i := range sources {
		sources[i].ID = i + 1
	}
	return sources
}

// SourceOf returns a map from member group id to its source's index in
// sources, for annotating ranked output.
func SourceOf(sources []Source) map[int]int {
	m := make(map[int]int)
	for i, s := range sources {
		for _, g := range s.Groups {
			m[g] = i
		}
	}
	return m
}
