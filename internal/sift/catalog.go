package sift

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"drapid/internal/spe"
)

// CatalogEntry is one known source: a name, its catalogued DM, and (for
// periodic sources) its spin period. The interchange form is CSV,
// "name,dm,period_s", with the period field optional.
type CatalogEntry struct {
	Name string `json:"name"`
	// DM is the catalogued dispersion measure in pc cm⁻³.
	DM float64 `json:"dm"`
	// PeriodSec is the spin period in seconds; zero for aperiodic sources
	// (or when the catalog omits it).
	PeriodSec float64 `json:"period_sec,omitempty"`
}

// CatalogHeader is the header line written at the top of catalog files.
const CatalogHeader = "# name,dm,period_s"

// FormatCatalogEntry renders one entry as a catalog CSV record.
func FormatCatalogEntry(e CatalogEntry) string {
	if e.PeriodSec == 0 {
		return fmt.Sprintf("%s,%.4f,", e.Name, e.DM)
	}
	return fmt.Sprintf("%s,%.4f,%.6f", e.Name, e.DM, e.PeriodSec)
}

// ParseCatalogLine parses one catalog CSV record.
func ParseCatalogLine(line string) (CatalogEntry, error) {
	f := strings.Split(line, ",")
	if len(f) != 2 && len(f) != 3 {
		return CatalogEntry{}, fmt.Errorf("sift: catalog record needs 2 or 3 fields, got %d: %q", len(f), line)
	}
	var e CatalogEntry
	e.Name = strings.TrimSpace(f[0])
	if e.Name == "" {
		return CatalogEntry{}, fmt.Errorf("sift: catalog record has an empty name: %q", line)
	}
	dm, err := strconv.ParseFloat(strings.TrimSpace(f[1]), 64)
	if err != nil {
		return CatalogEntry{}, fmt.Errorf("sift: bad catalog dm: %w", err)
	}
	if math.IsNaN(dm) || math.IsInf(dm, 0) || dm < 0 {
		return CatalogEntry{}, fmt.Errorf("sift: catalog dm %g must be finite and >= 0", dm)
	}
	e.DM = dm
	if len(f) == 3 && strings.TrimSpace(f[2]) != "" {
		p, err := strconv.ParseFloat(strings.TrimSpace(f[2]), 64)
		if err != nil {
			return CatalogEntry{}, fmt.Errorf("sift: bad catalog period: %w", err)
		}
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return CatalogEntry{}, fmt.Errorf("sift: catalog period %g must be finite and >= 0", p)
		}
		e.PeriodSec = p
	}
	return e, nil
}

// ParseCatalog reads a known-source catalog. Header and blank lines
// (including trailing ones) are skipped; a malformed record fails with its
// 1-based line number, like the pipeline's other CSV readers.
func ParseCatalog(r io.Reader) ([]CatalogEntry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []CatalogEntry
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if spe.IsHeader(line) {
			continue
		}
		e, err := ParseCatalogLine(line)
		if err != nil {
			return nil, fmt.Errorf("sift: line %d: %w", ln, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sift: after line %d: %w", ln, err)
	}
	return out, nil
}

// MatchCatalog annotates each source with the name of the closest catalog
// entry whose DM lies within the CatalogDM tolerance window, mutating
// sources in place. Sources with no entry in reach stay unannotated.
func MatchCatalog(sources []Source, catalog []CatalogEntry, p Params) {
	p = p.withDefaults()
	for i := range sources {
		bestDist := math.Inf(1)
		for _, e := range catalog {
			d := math.Abs(sources[i].DM - e.DM)
			if d <= p.CatalogDM && d < bestDist {
				bestDist = d
				sources[i].Known = e.Name
			}
		}
	}
}
