package sift

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"drapid/internal/spe"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testKey is the observation every sift test runs under.
var testKey = spe.Key{Dataset: "SIFTFIX", MJD: 58000}

// mkPulse fabricates a dispersed-pulse group: peak SNR at dm, falling off
// over ±span trials with the matched-filter silhouette.
func mkPulse(dm, t, snr float64, span int) []spe.SPE {
	var out []spe.SPE
	for k := -span; k <= span; k++ {
		s := snr / (1 + float64(k*k)/9)
		if s < 6 || dm+float64(k) < 0 {
			continue
		}
		out = append(out, spe.SPE{DM: dm + float64(k), SNR: s, Time: t, Sample: int64(t / 256e-6), Downfact: 4})
	}
	return out
}

// TestRankLadder drives one crafted group onto every rung.
func TestRankLadder(t *testing.T) {
	p := Params{}
	cases := []struct {
		name    string
		members []spe.SPE
		want    Rank
	}{
		{"too small", mkPulse(80, 1, 8, 6), RankNoise}, // 3 events < MinGroup
		{"below floor", []spe.SPE{{DM: 78, SNR: 6.5, Time: 1}, {DM: 79, SNR: 6.6, Time: 1}, {DM: 80, SNR: 6.8, Time: 1}, {DM: 81, SNR: 6.6, Time: 1}, {DM: 82, SNR: 6.5, Time: 1}}, RankNoise},
		{"low-dm floor boost", mkPulse(8, 1, 8.7, 6), RankNoise}, // 5 events, but SNR 8.7 < 7·1.25 inside the RFI zone
		{"zero-dm rfi", []spe.SPE{{DM: 0, SNR: 30, Time: 2}, {DM: 1, SNR: 26, Time: 2}, {DM: 2, SNR: 22, Time: 2}, {DM: 3, SNR: 18, Time: 2}, {DM: 4, SNR: 14, Time: 2}, {DM: 5, SNR: 10, Time: 2}}, RankRFI},
		{"edge-peaked fair", []spe.SPE{{DM: 60, SNR: 11, Time: 3}, {DM: 61, SNR: 10, Time: 3}, {DM: 62, SNR: 9, Time: 3}, {DM: 63, SNR: 8, Time: 3}, {DM: 64, SNR: 7, Time: 3}}, RankFair},
		{"broad good", []spe.SPE{{DM: 60, SNR: 10.5, Time: 4}, {DM: 61, SNR: 10.8, Time: 4}, {DM: 62, SNR: 11, Time: 4}, {DM: 63, SNR: 10.8, Time: 4}, {DM: 64, SNR: 10.5, Time: 4}}, RankGood},
		{"strong", mkPulse(80, 5, 11, 6), RankStrong},
		{"excellent", mkPulse(80, 6, 20, 6), RankExcellent},
	}
	for _, tc := range cases {
		g := Build(0, testKey, tc.members, p)
		if g.Rank != tc.want {
			t.Errorf("%s: rank = %v, want %v (group %+v)", tc.name, g.Rank, tc.want, g)
		}
	}
}

// TestRankMonotoneInSNR is the ladder's ordering property: at fixed group
// size and shape, uniformly brighter events can never rank lower.
func TestRankMonotoneInSNR(t *testing.T) {
	fix := NewFixture(FixtureConfig{
		Seed: 7,
		Trains: []FixtureTrain{
			{DM: 75, StartSec: 0.5, PeriodSec: 1.1, Count: 4, SNR: 13},
			{DM: 190, StartSec: 0.9, PeriodSec: 2.3, Count: 3, SNR: 9},
		},
		Singles: []FixtureTrain{{DM: 33, StartSec: 4.4, SNR: 18}, {DM: 260, StartSec: 7.7, SNR: 10}},
		RFI:     3,
		Noise:   5,
	})
	for i, fg := range fix.Groups {
		base := Build(i, testKey, fg.Members, Params{})
		for _, scale := range []float64{1.05, 1.3, 2, 5} {
			brighter := make([]spe.SPE, len(fg.Members))
			for j, e := range fg.Members {
				e.SNR *= scale
				brighter[j] = e
			}
			got := Build(i, testKey, brighter, Params{})
			if got.Rank < base.Rank {
				t.Fatalf("group %d (%s): rank fell %v → %v when every SNR scaled by %g",
					i, fg.Label, base.Rank, got.Rank, scale)
			}
		}
	}
}

// TestBuildPermutationInvariant: the sifted group must not depend on the
// order member events arrive in.
func TestBuildPermutationInvariant(t *testing.T) {
	members := mkPulse(120, 2.5, 15, 6)
	// Add an SNR tie so the peak tiebreak is exercised too.
	members = append(members, spe.SPE{DM: 115, SNR: members[0].SNR, Time: 3.0, Downfact: 2})
	want := Build(3, testKey, members, Params{})
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		shuffled := make([]spe.SPE, len(members))
		copy(shuffled, members)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := Build(3, testKey, shuffled, Params{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted members changed the group:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// TestSortGroupsPartitionInvariant: sorting the union equals merging
// independently sorted parts — the property the streaming path's
// segment-by-segment ranking rests on (DESIGN.md §8.4).
func TestSortGroupsPartitionInvariant(t *testing.T) {
	fix := NewFixture(FixtureConfig{
		Seed:    3,
		Trains:  []FixtureTrain{{DM: 140, StartSec: 0.4, PeriodSec: 0.9, Count: 6, SNR: 14}},
		Singles: []FixtureTrain{{DM: 52, StartSec: 2.2, SNR: 22}},
		RFI:     2,
		Noise:   4,
	})
	all := make([]Group, len(fix.Groups))
	for i, fg := range fix.Groups {
		all[i] = Build(i, fix.Key, fg.Members, Params{})
	}
	want := append([]Group(nil), all...)
	SortGroups(want)
	for _, cut := range []int{1, 3, len(all) / 2, len(all) - 1} {
		a := append([]Group(nil), all[:cut]...)
		b := append([]Group(nil), all[cut:]...)
		SortGroups(a)
		SortGroups(b)
		merged := append(a, b...)
		SortGroups(merged)
		if !reflect.DeepEqual(merged, want) {
			t.Fatalf("cut %d: merged per-partition ranking differs from global ranking", cut)
		}
	}
}

// TestSources: injected pulse trains must come back as repeat sources with
// the right detection counts and the brightest group as exemplar.
func TestSources(t *testing.T) {
	fix := NewFixture(FixtureConfig{
		Seed: 19,
		Trains: []FixtureTrain{
			{DM: 88, StartSec: 0.5, PeriodSec: 1.4, Count: 5, SNR: 16},
			{DM: 215, StartSec: 1.1, PeriodSec: 2.0, Count: 3, SNR: 12},
		},
		Singles: []FixtureTrain{{DM: 300, StartSec: 6.5, SNR: 14}},
		RFI:     2,
		Noise:   6,
	})
	groups := make([]Group, len(fix.Groups))
	for i, fg := range fix.Groups {
		groups[i] = Build(i, fix.Key, fg.Members, Params{})
	}
	sources := Sources(groups, Params{})
	if len(sources) != 3 {
		t.Fatalf("got %d sources, want 3 (two trains + one single): %+v", len(sources), sources)
	}
	// Most-detected first: the 5-pulse train, then the 3-pulse train.
	if sources[0].Detections != 5 || sources[1].Detections != 3 || sources[2].Detections != 1 {
		t.Fatalf("detection counts = %d,%d,%d, want 5,3,1",
			sources[0].Detections, sources[1].Detections, sources[2].Detections)
	}
	for i, wantDM := range []float64{88, 215, 300} {
		if d := sources[i].DM - wantDM; d < -3 || d > 3 {
			t.Errorf("source %d DM = %g, want ≈%g", i, sources[i].DM, wantDM)
		}
		if sources[i].ID != i+1 {
			t.Errorf("source %d ID = %d, want %d", i, sources[i].ID, i+1)
		}
	}
	// The exemplar is the brightest member group.
	byID := map[int]Group{}
	for _, g := range groups {
		byID[g.ID] = g
	}
	for _, s := range sources {
		for _, gid := range s.Groups {
			if byID[gid].SNR > s.BestSNR {
				t.Errorf("source %d exemplar SNR %.1f below member group %d's %.1f", s.ID, s.BestSNR, gid, byID[gid].SNR)
			}
		}
		if byID[s.Best].SNR != s.BestSNR {
			t.Errorf("source %d: Best group %d has SNR %.1f, BestSNR says %.1f", s.ID, s.Best, byID[s.Best].SNR, s.BestSNR)
		}
	}
	// RFI and noise groups must not seed sources.
	member := SourceOf(sources)
	for i, fg := range fix.Groups {
		if fg.Label != LabelPulse {
			if _, ok := member[groups[i].ID]; ok && groups[i].Rank >= RankFair {
				continue // a fair-ranked non-pulse may legitimately match
			}
			if _, ok := member[groups[i].ID]; ok {
				t.Errorf("%s group %d joined a source", fg.Label, i)
			}
		}
	}
}

// TestSourcesInputOrderInvariant: cross-matching must not depend on the
// order groups are handed over (streaming hands them segment by segment).
func TestSourcesInputOrderInvariant(t *testing.T) {
	fix := NewFixture(FixtureConfig{
		Seed:   23,
		Trains: []FixtureTrain{{DM: 120, StartSec: 0.3, PeriodSec: 0.8, Count: 7, SNR: 15}},
		RFI:    2,
		Noise:  3,
	})
	groups := make([]Group, len(fix.Groups))
	for i, fg := range fix.Groups {
		groups[i] = Build(i, fix.Key, fg.Members, Params{})
	}
	want := Sources(groups, Params{})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Group(nil), groups...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := Sources(shuffled, Params{}); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffled input changed the sources:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err != nil {
		t.Fatalf("zero params rejected: %v", err)
	}
	bad := []Params{
		{MinGroup: -1},
		{MinSNR: -2},
		{FracSigma: 1.5},
		{CloseDM: -1},
		{CatalogDM: -0.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

// renderRanking is the golden-file shape: one line per group in canonical
// ranked order, carrying everything rank-relevant.
func renderRanking(groups []Group, truth map[int]Label) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# rank score snr dm time n label\n")
	for _, g := range groups {
		fmt.Fprintf(&b, "%-9s %8.3f %7.3f %7.2f %8.4f %3d %s\n",
			g.Rank, g.Score(), g.SNR, g.DM, g.Time, g.N, truth[g.ID])
	}
	return b.String()
}

// TestGoldenRanking pins the full ranked ordering of a mixed fixture. The
// golden file is the reviewable contract for the ladder: regenerate with
// `go test ./internal/sift -run Golden -update` and inspect the diff.
func TestGoldenRanking(t *testing.T) {
	fix := NewFixture(FixtureConfig{
		Seed: 41,
		Trains: []FixtureTrain{
			{DM: 96, StartSec: 0.4, PeriodSec: 1.2, Count: 5, SNR: 17},
			{DM: 243, StartSec: 0.8, PeriodSec: 2.1, Count: 3, SNR: 11},
		},
		Singles: []FixtureTrain{
			{DM: 31, StartSec: 3.1, SNR: 24},
			{DM: 160, StartSec: 5.9, SNR: 9.5},
		},
		RFI:   3,
		Noise: 8,
	})
	truth := map[int]Label{}
	for i, fg := range fix.Groups {
		truth[i] = fg.Label
	}
	got := renderRanking(fix.Build(Params{}), truth)

	path := filepath.Join("testdata", "ranking.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("ranking drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The golden ordering must also respect the labels: every pulse group
	// bright enough to clear the floors outranks every RFI and noise group.
	ranked := fix.Build(Params{})
	worstPulse, bestOther := RankExcellent, RankNoise
	for _, g := range ranked {
		switch truth[g.ID] {
		case LabelPulse:
			if g.Rank >= RankFair && g.Rank < worstPulse {
				worstPulse = g.Rank
			}
		default:
			if g.Rank > bestOther {
				bestOther = g.Rank
			}
		}
	}
	if bestOther >= worstPulse {
		t.Errorf("an rfi/noise group (rank %v) ties or beats a real pulse (rank %v)", bestOther, worstPulse)
	}
}
