package sift

import (
	"strings"
	"testing"
)

func TestParseCatalog(t *testing.T) {
	in := strings.Join([]string{
		CatalogHeader,
		"B0531+21,56.7712,0.033392",
		"J1819-1458,196.0000,4.263160",
		"",
		"FRB121102,557.0000,", // aperiodic: empty period field
		"B0329+54,26.7641",    // aperiodic: period column omitted
		"",
	}, "\n")
	cat, err := ParseCatalog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 4 {
		t.Fatalf("parsed %d entries, want 4", len(cat))
	}
	if cat[0].Name != "B0531+21" || cat[0].DM != 56.7712 || cat[0].PeriodSec != 0.033392 {
		t.Fatalf("entry 0 = %+v", cat[0])
	}
	if cat[2].PeriodSec != 0 || cat[3].PeriodSec != 0 {
		t.Fatalf("aperiodic entries carry periods: %+v, %+v", cat[2], cat[3])
	}
	for i, e := range cat {
		back, err := ParseCatalogLine(FormatCatalogEntry(e))
		if err != nil {
			t.Fatalf("entry %d does not round trip: %v", i, err)
		}
		if back.Name != e.Name {
			t.Fatalf("entry %d name drifted: %q → %q", i, e.Name, back.Name)
		}
	}
}

// TestParseCatalogLineNumbers: malformed records must carry their 1-based
// line number, like the spe CSV readers.
func TestParseCatalogLineNumbers(t *testing.T) {
	cases := map[string]string{
		"# name,dm,period_s\nB0531+21,56.77,0.0334\nbroken": "line 3",
		"J0000+00,not-a-dm,1":                               "line 1",
		"# header\n\nname,12,nope":                          "line 3",
		"ok,10,1\n,20,2":                                    "line 2",
		"neg,-4,1":                                          "line 1",
		"inf,1e999,1":                                       "line 1",
		"toomany,1,2,3":                                     "line 1",
		"# name,dm,period_s\nB0531+21,56.77,0.0334\nbadp,5,-1e3": "line 3",
	}
	for in, want := range cases {
		_, err := ParseCatalog(strings.NewReader(in))
		if err == nil {
			t.Errorf("accepted %q", in)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error for %q lacks %q: %v", in, want, err)
		}
	}
}

func TestMatchCatalog(t *testing.T) {
	cat := []CatalogEntry{
		{Name: "B0531+21", DM: 56.77, PeriodSec: 0.0334},
		{Name: "NEARBY", DM: 58.9},
		{Name: "J1819-1458", DM: 196.0, PeriodSec: 4.26},
	}
	sources := []Source{
		{ID: 1, DM: 57.1},  // inside both windows: closest (B0531+21) wins
		{ID: 2, DM: 196.5}, // inside J1819-1458's window
		{ID: 3, DM: 300},   // no match
	}
	MatchCatalog(sources, cat, Params{})
	if sources[0].Known != "B0531+21" {
		t.Errorf("source 1 matched %q, want the closest entry B0531+21", sources[0].Known)
	}
	if sources[1].Known != "J1819-1458" {
		t.Errorf("source 2 matched %q, want J1819-1458", sources[1].Known)
	}
	if sources[2].Known != "" {
		t.Errorf("source 3 matched %q, want no match", sources[2].Known)
	}
}
