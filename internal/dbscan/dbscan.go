// Package dbscan implements the stage-2 clustering of the pipeline: a
// density-based clustering of single pulse events in the DM-vs-time plane,
// customized for radio astronomy following the paper's reference [24]
// (Pang et al.). Two customizations matter:
//
//  1. distances are measured in trial-DM steps, not raw DM, so the widening
//     DM spacing at high DM (0.01 → 2.0) does not tear clusters apart; and
//  2. a post-pass merges clusters that one single pulse left "appearing
//     disparate due to artifacts of data processing" — fragments that are
//     adjacent in DM with a small time gap.
package dbscan

import (
	"math"

	"drapid/internal/dmgrid"
	"drapid/internal/spe"
)

// Noise is the label assigned to events that belong to no cluster.
const Noise = -1

// Params configures the clustering.
type Params struct {
	// EpsDMTrials is the neighborhood radius measured in trial-DM grid
	// steps.
	EpsDMTrials float64
	// EpsTime is the neighborhood radius in seconds.
	EpsTime float64
	// MinPts is the minimum neighborhood size (the point itself included)
	// for a core point.
	MinPts int
	// MergeDMTrials and MergeTime bound the gap across which the merge
	// pass joins cluster fragments. Zero disables merging.
	MergeDMTrials float64
	MergeTime     float64
}

// DefaultParams returns the tuning used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		EpsDMTrials:   6,
		EpsTime:       0.10,
		MinPts:        3,
		MergeDMTrials: 12,
		MergeTime:     0.05,
	}
}

// Result holds the clustering outcome for one observation.
type Result struct {
	// Labels assigns each input event its cluster index, or Noise.
	Labels []int
	// Clusters are the summarised cluster records, ranked by SNR.
	Clusters []*spe.Cluster
	// Members holds, per cluster, the indices of its events in the input
	// slice.
	Members [][]int
}

// MemberEvents materialises cluster i's member events from the input slice
// the clustering ran over, preserving input (time) order — the view the
// post-classification sifter rates groups from.
func (r *Result) MemberEvents(i int, events []spe.SPE) []spe.SPE {
	out := make([]spe.SPE, len(r.Members[i]))
	for j, idx := range r.Members[i] {
		out[j] = events[idx]
	}
	return out
}

// Cluster runs the customized DBSCAN over one observation's events.
func Cluster(events []spe.SPE, grid *dmgrid.Grid, key spe.Key, p Params) *Result {
	n := len(events)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 {
		return &Result{Labels: labels}
	}

	// Normalised coordinates: x in trial steps, y in eps-time units.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, e := range events {
		xs[i] = float64(grid.IndexOf(e.DM)) / p.EpsDMTrials
		ys[i] = e.Time / p.EpsTime
	}
	idx := newCellIndex(xs, ys)

	// Standard DBSCAN with BFS expansion.
	nextID := 0
	queue := make([]int, 0, 64)
	for i := 0; i < n; i++ {
		if labels[i] != Noise {
			continue
		}
		neigh := idx.neighbors(i, xs, ys)
		if len(neigh) < p.MinPts {
			continue
		}
		id := nextID
		nextID++
		labels[i] = id
		queue = append(queue[:0], neigh...)
		for len(queue) > 0 {
			j := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[j] == id {
				continue
			}
			wasNoise := labels[j] == Noise
			labels[j] = id
			if !wasNoise {
				continue // border point claimed from another cluster: keep new label, don't expand
			}
			jn := idx.neighbors(j, xs, ys)
			if len(jn) >= p.MinPts {
				queue = append(queue, jn...)
			}
		}
	}

	if p.MergeDMTrials > 0 && p.MergeTime > 0 && nextID > 1 {
		nextID = mergeFragments(events, labels, grid, nextID, p)
	}

	return summarize(events, labels, nextID, key)
}

// mergeFragments joins clusters whose bounding boxes are within the merge
// gaps of each other — the paper's artifact-repair pass. Returns the new
// cluster count after relabeling to dense ids.
func mergeFragments(events []spe.SPE, labels []int, grid *dmgrid.Grid, k int, p Params) int {
	type box struct {
		xLo, xHi float64 // trial-step units
		tLo, tHi float64
	}
	boxes := make([]box, k)
	for i := range boxes {
		boxes[i] = box{math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)}
	}
	for i, l := range labels {
		if l == Noise {
			continue
		}
		x := float64(grid.IndexOf(events[i].DM))
		b := &boxes[l]
		b.xLo = math.Min(b.xLo, x)
		b.xHi = math.Max(b.xHi, x)
		b.tLo = math.Min(b.tLo, events[i].Time)
		b.tHi = math.Max(b.tHi, events[i].Time)
	}

	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	gap := func(lo1, hi1, lo2, hi2 float64) float64 {
		if hi1 < lo2 {
			return lo2 - hi1
		}
		if hi2 < lo1 {
			return lo1 - hi2
		}
		return 0
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			if gap(boxes[a].xLo, boxes[a].xHi, boxes[b].xLo, boxes[b].xHi) <= p.MergeDMTrials &&
				gap(boxes[a].tLo, boxes[a].tHi, boxes[b].tLo, boxes[b].tHi) <= p.MergeTime {
				union(a, b)
			}
		}
	}

	// Relabel to dense ids.
	dense := make(map[int]int, k)
	next := 0
	for i, l := range labels {
		if l == Noise {
			continue
		}
		r := find(l)
		id, ok := dense[r]
		if !ok {
			id = next
			next++
			dense[r] = id
		}
		labels[i] = id
	}
	return next
}

func summarize(events []spe.SPE, labels []int, k int, key spe.Key) *Result {
	members := make([][]int, k)
	for i, l := range labels {
		if l != Noise {
			members[l] = append(members[l], i)
		}
	}
	clusters := make([]*spe.Cluster, k)
	for id, m := range members {
		group := make([]spe.SPE, len(m))
		for j, i := range m {
			group[j] = events[i]
		}
		clusters[id] = spe.Summarize(id, key, group)
	}
	spe.RankClusters(clusters)
	return &Result{Labels: labels, Clusters: clusters, Members: members}
}

// cellIndex is a uniform-grid spatial hash over the normalised coordinates;
// with eps = 1 in both axes, all neighbors of a point live in its cell or
// the eight surrounding cells.
type cellIndex struct {
	cells map[[2]int][]int
}

func newCellIndex(xs, ys []float64) *cellIndex {
	ci := &cellIndex{cells: make(map[[2]int][]int, len(xs)/2+1)}
	for i := range xs {
		c := [2]int{int(math.Floor(xs[i])), int(math.Floor(ys[i]))}
		ci.cells[c] = append(ci.cells[c], i)
	}
	return ci
}

func (ci *cellIndex) neighbors(i int, xs, ys []float64) []int {
	cx, cy := int(math.Floor(xs[i])), int(math.Floor(ys[i]))
	var out []int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, j := range ci.cells[[2]int{cx + dx, cy + dy}] {
				ddx, ddy := xs[j]-xs[i], ys[j]-ys[i]
				if ddx*ddx+ddy*ddy <= 1 {
					out = append(out, j)
				}
			}
		}
	}
	return out
}
