package dbscan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"drapid/internal/dmgrid"
	"drapid/internal/spe"
)

func grid(t *testing.T) *dmgrid.Grid {
	t.Helper()
	g, err := dmgrid.New([]dmgrid.Stage{{Lo: 0, Hi: 1000, Step: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// blob makes n events tightly packed around (dm, t0).
func blob(n int, dm, t0 float64) []spe.SPE {
	out := make([]spe.SPE, n)
	for i := range out {
		out[i] = spe.SPE{DM: dm + float64(i%5)*0.1, SNR: 6 + float64(i%3), Time: t0 + float64(i/5)*0.01}
	}
	return out
}

func TestTwoSeparatedBlobs(t *testing.T) {
	events := append(blob(20, 50, 10), blob(20, 300, 60)...)
	res := Cluster(events, grid(t), spe.Key{}, DefaultParams())
	if len(res.Clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(res.Clusters))
	}
	for _, c := range res.Clusters {
		if c.N != 20 {
			t.Errorf("cluster size %d, want 20", c.N)
		}
	}
}

func TestNoiseStaysUnlabeled(t *testing.T) {
	// Far-flung singleton events cannot form cores with MinPts=3.
	events := []spe.SPE{
		{DM: 10, Time: 1}, {DM: 200, Time: 50}, {DM: 500, Time: 100},
	}
	res := Cluster(events, grid(t), spe.Key{}, DefaultParams())
	if len(res.Clusters) != 0 {
		t.Fatalf("got %d clusters from isolated noise", len(res.Clusters))
	}
	for i, l := range res.Labels {
		if l != Noise {
			t.Errorf("event %d labeled %d, want Noise", i, l)
		}
	}
}

func TestMergePassJoinsFragments(t *testing.T) {
	// Two fragments of one pulse: adjacent in DM, tiny time gap — the
	// processing artifact the paper's customized DBSCAN repairs.
	frag1 := blob(15, 100, 10)
	frag2 := blob(15, 100.9, 10.02) // ~9 trials and 20 ms away
	events := append(frag1, frag2...)

	p := DefaultParams()
	p.MergeDMTrials = 0 // disabled: expect 2 clusters
	res := Cluster(events, grid(t), spe.Key{}, p)
	base := len(res.Clusters)

	p = DefaultParams() // enabled: expect fewer
	res2 := Cluster(events, grid(t), spe.Key{}, p)
	if base < 2 {
		t.Skipf("fragments not separated at base settings (%d clusters)", base)
	}
	if len(res2.Clusters) >= base {
		t.Errorf("merge pass did not reduce clusters: %d -> %d", base, len(res2.Clusters))
	}
}

func TestEmptyInput(t *testing.T) {
	res := Cluster(nil, grid(t), spe.Key{}, DefaultParams())
	if len(res.Clusters) != 0 || len(res.Labels) != 0 {
		t.Error("expected empty result")
	}
}

func TestClusterRanksAssigned(t *testing.T) {
	bright := blob(20, 50, 10)
	for i := range bright {
		bright[i].SNR = 30
	}
	faint := blob(20, 300, 60)
	res := Cluster(append(bright, faint...), grid(t), spe.Key{}, DefaultParams())
	if len(res.Clusters) != 2 {
		t.Fatalf("got %d clusters", len(res.Clusters))
	}
	for _, c := range res.Clusters {
		if c.SNRMax == 30 && c.Rank != 1 {
			t.Errorf("bright cluster rank %d, want 1", c.Rank)
		}
		if c.SNRMax != 30 && c.Rank != 2 {
			t.Errorf("faint cluster rank %d, want 2", c.Rank)
		}
	}
}

// Property: labels are consistent — every label is Noise or a valid cluster
// id; Members agrees with Labels; cluster summaries bound their members.
func TestLabelInvariants(t *testing.T) {
	g := grid(t)
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size)
		events := make([]spe.SPE, n)
		for i := range events {
			events[i] = spe.SPE{DM: r.Float64() * 900, SNR: 5 + r.Float64()*10, Time: r.Float64() * 100}
		}
		res := Cluster(events, g, spe.Key{}, DefaultParams())
		counts := make([]int, len(res.Clusters))
		for i, l := range res.Labels {
			if l == Noise {
				continue
			}
			if l < 0 || l >= len(res.Clusters) {
				return false
			}
			counts[l]++
			c := res.Clusters[l]
			if events[i].DM < c.DMMin || events[i].DM > c.DMMax {
				return false
			}
			if events[i].Time < c.TMin || events[i].Time > c.TMax {
				return false
			}
		}
		for id, c := range res.Clusters {
			if c.N != counts[id] || len(res.Members[id]) != counts[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestVaryingDMSpacingDoesNotSplit(t *testing.T) {
	// A pulse straddling a spacing change in the default plan: trial steps,
	// not raw DM, define distance, so the cluster must hold together.
	g := dmgrid.Default()
	var events []spe.SPE
	for _, dm := range g.Neighborhood(100, 3) { // spacing changes at 100
		events = append(events, spe.SPE{DM: dm, SNR: 8, Time: 5})
	}
	if len(events) < 10 {
		t.Fatalf("fixture too small: %d", len(events))
	}
	res := Cluster(events, g, spe.Key{}, DefaultParams())
	if len(res.Clusters) != 1 {
		t.Errorf("cluster split across spacing boundary: %d clusters", len(res.Clusters))
	}
}
