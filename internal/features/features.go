// Package features extracts the 22 characteristic features of a single
// pulse that the paper's classifiers consume (§5.1.3): sixteen base features
// in the families described by the authors' earlier work (SNR-vs-DM shape
// statistics, theoretical dedispersion-curve fit quality, peak geometry,
// cluster context) plus the six additional features of Table 1 (StartTime,
// StopTime, ClusterRank, PulseRank, DMSpacing, SNRRatio).
//
// The 2016 paper that defines the base sixteen is cited but not reproduced
// in the ICPP text, so the base set here is a documented reconstruction in
// the same families; Table 1's six are implemented verbatim. One ML instance
// corresponds to one identified single pulse.
package features

import (
	"math"

	"drapid/internal/core"
	"drapid/internal/dmgrid"
	"drapid/internal/spe"
	"drapid/internal/synth"
)

// Feature indices into a Vector. The order is stable: serialized ML files
// and feature-selection results refer to these positions.
const (
	NumSPEs = iota
	SNRMax
	AvgSNR
	SNRStd
	SNRPeakDM
	DMRange
	DMCenter
	PeakWidthDM
	PeakScore
	SNRSkewness
	SNRKurtosis
	FitResidual
	SlopeUp
	SlopeDown
	FracAboveHalfMax
	ClusterNumSPEs
	StartTime
	StopTime
	ClusterRank
	PulseRank
	DMSpacing
	SNRRatio
	// Count is the number of features (22, matching §5.2.3).
	Count
)

// Names lists the feature names in index order.
var Names = [Count]string{
	"NumSPEs", "SNRMax", "AvgSNR", "SNRStd", "SNRPeakDM", "DMRange",
	"DMCenter", "PeakWidthDM", "PeakScore", "SNRSkewness", "SNRKurtosis",
	"FitResidual", "SlopeUp", "SlopeDown", "FracAboveHalfMax",
	"ClusterNumSPEs", "StartTime", "StopTime", "ClusterRank", "PulseRank",
	"DMSpacing", "SNRRatio",
}

// Vector is one ML instance: the 22 features of one single pulse.
type Vector [Count]float64

// Config carries the context feature extraction needs: the trial-DM plan
// (for DMSpacing) and the receiver parameters (for the theoretical
// dedispersion-curve fit).
type Config struct {
	Grid    *dmgrid.Grid
	BandMHz float64
	FreqGHz float64
}

// Extract computes the feature vector for one pulse found in a cluster.
// events must be the cluster's members in DM-sorted order (the order
// core.Search indexed); cl supplies cluster context.
func Extract(events []spe.SPE, pulse core.Pulse, cl *spe.Cluster, cfg Config) Vector {
	var v Vector
	if pulse.Start >= pulse.End || pulse.End > len(events) {
		return v
	}
	member := events[pulse.Start:pulse.End]
	st := pulse.ComputeStats(events)

	v[NumSPEs] = float64(len(member))
	v[SNRMax] = st.SNRMax
	v[AvgSNR] = st.AvgSNR
	v[SNRStd] = stddev(member, st.AvgSNR)
	v[SNRPeakDM] = st.PeakDM
	v[DMRange] = member[len(member)-1].DM - member[0].DM
	v[DMCenter] = (member[len(member)-1].DM + member[0].DM) / 2
	v[PeakWidthDM] = halfMaxWidth(member)
	if st.AvgSNR > 0 {
		v[PeakScore] = st.SNRMax / st.AvgSNR
	}
	v[SNRSkewness], v[SNRKurtosis] = moments(member, st.AvgSNR, v[SNRStd])
	v[FitResidual] = fitResidual(member, st, cfg)
	peakOff := pulse.Peak - pulse.Start
	bin := core.BinSize(len(member), core.DefaultWeight)
	v[SlopeUp] = core.MeanSlope(member, 0, peakOff, bin, core.XIndex)
	v[SlopeDown] = core.MeanSlope(member, peakOff, len(member)-1, bin, core.XIndex)
	v[FracAboveHalfMax] = fracAboveHalfMax(member)
	if cl != nil {
		v[ClusterNumSPEs] = float64(cl.N)
		v[ClusterRank] = float64(cl.Rank)
	}
	v[StartTime] = st.StartTime
	v[StopTime] = st.StopTime
	v[PulseRank] = float64(pulse.Rank)
	if cfg.Grid != nil {
		v[DMSpacing] = cfg.Grid.SpacingAt(st.PeakDM)
	}
	if st.SNRMax > 0 {
		v[SNRRatio] = st.SNRFirst / st.SNRMax
	}
	return v
}

// ExtractAll runs the D-RAPID search over a cluster and extracts one vector
// per identified pulse — the "Search" plus "feature extraction" steps a
// D-RAPID worker performs for one joined cluster.
func ExtractAll(events []spe.SPE, cl *spe.Cluster, p core.Params, cfg Config) []Vector {
	sorted := core.SortedEvents(events)
	pulses := core.Search(sorted, p)
	if len(pulses) == 0 {
		return nil
	}
	out := make([]Vector, len(pulses))
	for i, pl := range pulses {
		out[i] = Extract(sorted, pl, cl, cfg)
	}
	return out
}

func stddev(member []spe.SPE, mean float64) float64 {
	if len(member) < 2 {
		return 0
	}
	var ss float64
	for _, e := range member {
		d := e.SNR - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(member)-1))
}

// moments returns the sample skewness and excess kurtosis of the member
// SNRs; both are 0 when the spread is degenerate.
func moments(member []spe.SPE, mean, sd float64) (skew, kurt float64) {
	n := float64(len(member))
	if n < 3 || sd == 0 {
		return 0, 0
	}
	var s3, s4 float64
	for _, e := range member {
		z := (e.SNR - mean) / sd
		s3 += z * z * z
		s4 += z * z * z * z
	}
	return s3 / n, s4/n - 3
}

// halfMaxWidth is the DM extent of the events whose SNR reaches halfway
// between the faintest and brightest member.
func halfMaxWidth(member []spe.SPE) float64 {
	lo, hi := member[0].SNR, member[0].SNR
	for _, e := range member {
		lo = math.Min(lo, e.SNR)
		hi = math.Max(hi, e.SNR)
	}
	level := (lo + hi) / 2
	dmLo, dmHi := math.Inf(1), math.Inf(-1)
	for _, e := range member {
		if e.SNR >= level {
			dmLo = math.Min(dmLo, e.DM)
			dmHi = math.Max(dmHi, e.DM)
		}
	}
	if dmHi < dmLo {
		return 0
	}
	return dmHi - dmLo
}

func fracAboveHalfMax(member []spe.SPE) float64 {
	lo, hi := member[0].SNR, member[0].SNR
	for _, e := range member {
		lo = math.Min(lo, e.SNR)
		hi = math.Max(hi, e.SNR)
	}
	level := (lo + hi) / 2
	count := 0
	for _, e := range member {
		if e.SNR >= level {
			count++
		}
	}
	return float64(count) / float64(len(member))
}

// fitWidths is the grid of trial intrinsic widths (ms) for the theoretical
// curve fit.
var fitWidths = []float64{0.25, 0.5, 1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// fitResidual fits the Cordes-McLaughlin dedispersion-mismatch curve —
// amplitude pinned to the observed peak, centre pinned to SNRPeakDM, width
// grid-searched — and returns the RMS residual normalised by the peak SNR.
//
// A candidate width only counts if the curve actually varies over the
// observed DM extent (≥ 30% of peak between its highest and lowest model
// values); without that guard the widest widths degenerate to a constant
// and "fit" flat interference perfectly. The amplitude is fitted by least
// squares, because identified pulses are often fragments of the full
// curve. If no width qualifies the residual saturates at 1 — which is what
// makes this feature separate astrophysical pulses (small residual) from
// flat or decaying RFI (large residual), standing in for the 2016 paper's
// curve-fit feature family.
func fitResidual(member []spe.SPE, st core.Stats, cfg Config) float64 {
	if st.SNRMax <= 0 || len(member) < 3 {
		return 0
	}
	band, freq := cfg.BandMHz, cfg.FreqGHz
	if band == 0 {
		band = 100
	}
	if freq == 0 {
		freq = 1
	}
	best := 1.0
	shape := make([]float64, len(member))
	for _, w := range fitWidths {
		sLo, sHi := math.Inf(1), math.Inf(-1)
		for i, e := range member {
			s := synth.SNRDegradation(e.DM-st.PeakDM, w, band, freq)
			shape[i] = s
			sLo = math.Min(sLo, s)
			sHi = math.Max(sHi, s)
		}
		if sHi-sLo < 0.3 {
			continue // degenerate: the curve is ~constant over the extent
		}
		// Least-squares amplitude for this width (the pulse may be a
		// fragment of the full curve, so the peak SNR alone misestimates).
		var num, den float64
		for i, e := range member {
			num += shape[i] * e.SNR
			den += shape[i] * shape[i]
		}
		if den == 0 {
			continue
		}
		amp := num / den
		var ss float64
		for i, e := range member {
			d := e.SNR - amp*shape[i]
			ss += d * d
		}
		rms := math.Sqrt(ss/float64(len(member))) / st.SNRMax
		if rms < best {
			best = rms
		}
	}
	return best
}
