package features

import (
	"math"
	"testing"

	"drapid/internal/core"
	"drapid/internal/dmgrid"
	"drapid/internal/spe"
	"drapid/internal/synth"
)

func cfg() Config {
	return Config{Grid: dmgrid.Default(), BandMHz: 300, FreqGHz: 1.4}
}

// pulseFixture builds a clean dedispersion-shaped pulse and runs the search
// over it, returning the cluster events (DM-sorted) and the found pulse.
func pulseFixture(t *testing.T) ([]spe.SPE, core.Pulse, *spe.Cluster) {
	t.Helper()
	g := synth.NewGenerator(synth.PALFA(), 5)
	p := synth.Pulsar{PeriodSec: 10, DM: 120, WidthMs: 5, PeakSNR: 25, Sporadic: 1}
	obs, _ := g.Observe(spe.Key{Dataset: "PALFA"}, synth.Sources{Pulsars: []synth.Pulsar{p}})
	if len(obs.Events) < 10 {
		t.Fatal("fixture generated too few events")
	}
	events := core.SortedEvents(obs.Events)
	pulses := core.Search(events, core.DefaultParams())
	if len(pulses) == 0 {
		t.Fatal("no pulse found in fixture")
	}
	best := pulses[0]
	for _, pl := range pulses {
		if events[pl.Peak].SNR > events[best.Peak].SNR {
			best = pl
		}
	}
	cl := spe.Summarize(0, obs.Key, events)
	cl.Rank = 1
	return events, best, cl
}

func TestCountIs22(t *testing.T) {
	if Count != 22 {
		t.Fatalf("feature count = %d, want 22 (16 base + Table 1's 6)", Count)
	}
	if len(Names) != Count {
		t.Fatalf("Names has %d entries", len(Names))
	}
	seen := map[string]bool{}
	for _, n := range Names {
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestTable1FeaturesPresent(t *testing.T) {
	for _, want := range []string{"StartTime", "StopTime", "ClusterRank", "PulseRank", "DMSpacing", "SNRRatio"} {
		found := false
		for _, n := range Names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Table 1 feature %s missing", want)
		}
	}
}

func TestExtractKnownPulse(t *testing.T) {
	events, pulse, cl := pulseFixture(t)
	v := Extract(events, pulse, cl, cfg())

	if v[NumSPEs] != float64(pulse.Len()) {
		t.Errorf("NumSPEs = %g, want %d", v[NumSPEs], pulse.Len())
	}
	if math.Abs(v[SNRPeakDM]-120) > 5 {
		t.Errorf("SNRPeakDM = %g, want ≈120", v[SNRPeakDM])
	}
	if v[SNRMax] < 10 || v[SNRMax] > 90 { // per-pulse lognormal jitter scatters the 25-SNR source
		t.Errorf("SNRMax = %g", v[SNRMax])
	}
	if v[AvgSNR] <= 5 || v[AvgSNR] >= v[SNRMax] {
		t.Errorf("AvgSNR = %g outside (threshold, max)", v[AvgSNR])
	}
	if v[DMRange] <= 0 {
		t.Errorf("DMRange = %g", v[DMRange])
	}
	if v[PeakScore] <= 1 {
		t.Errorf("PeakScore = %g, want > 1 for a peaked pulse", v[PeakScore])
	}
	if v[ClusterRank] != 1 {
		t.Errorf("ClusterRank = %g", v[ClusterRank])
	}
	if v[PulseRank] < 1 {
		t.Errorf("PulseRank = %g", v[PulseRank])
	}
	if v[SNRRatio] <= 0 || v[SNRRatio] > 1 {
		t.Errorf("SNRRatio = %g outside (0,1]", v[SNRRatio])
	}
	if v[StopTime] < v[StartTime] {
		t.Errorf("StopTime %g before StartTime %g", v[StopTime], v[StartTime])
	}
	// DMSpacing at DM 120 sits in the 0.1 stage of the default plan.
	if v[DMSpacing] != 0.1 {
		t.Errorf("DMSpacing = %g, want 0.1", v[DMSpacing])
	}
}

func TestFitResidualSeparatesPulsarsFromRFI(t *testing.T) {
	events, pulse, cl := pulseFixture(t)
	pulsar := Extract(events, pulse, cl, cfg())

	// Flat RFI: constant SNR across DM — the theoretical curve fits badly.
	flat := make([]spe.SPE, 40)
	for i := range flat {
		flat[i] = spe.SPE{DM: 100 + float64(i)*0.1, SNR: 8 + 0.3*float64(i%2), Time: 5}
	}
	flatPulse := core.Pulse{Start: 0, End: len(flat), Peak: 1}
	rfi := Extract(flat, flatPulse, nil, cfg())
	if pulsar[FitResidual] >= rfi[FitResidual] {
		t.Errorf("FitResidual should separate: pulsar %g vs flat RFI %g",
			pulsar[FitResidual], rfi[FitResidual])
	}
}

func TestExtractDegenerateInputs(t *testing.T) {
	var empty Vector
	if got := Extract(nil, core.Pulse{}, nil, cfg()); got != empty {
		t.Errorf("empty extraction should be zero: %v", got)
	}
	// Two events: minimal valid pulse.
	events := []spe.SPE{{DM: 1, SNR: 6, Time: 1}, {DM: 2, SNR: 8, Time: 1}}
	v := Extract(events, core.Pulse{Start: 0, End: 2, Peak: 1}, nil, cfg())
	if v[NumSPEs] != 2 || v[SNRMax] != 8 {
		t.Errorf("minimal pulse: %v", v)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("feature %s is %g", Names[i], x)
		}
	}
}

func TestExtractAllRunsSearch(t *testing.T) {
	events, _, cl := pulseFixture(t)
	vecs := ExtractAll(events, cl, core.DefaultParams(), cfg())
	if len(vecs) == 0 {
		t.Fatal("ExtractAll found nothing")
	}
	for _, v := range vecs {
		if v[NumSPEs] < 2 {
			t.Errorf("vector with %g SPEs", v[NumSPEs])
		}
	}
}

func TestSlopesSignsAroundPeak(t *testing.T) {
	// Clean triangle: rising side positive, falling side negative.
	n := 41
	events := make([]spe.SPE, n)
	for i := range events {
		snr := 20.0 - math.Abs(float64(i-n/2))*0.5
		events[i] = spe.SPE{DM: float64(i) * 0.1, SNR: snr, Time: 1}
	}
	v := Extract(events, core.Pulse{Start: 0, End: n, Peak: n / 2}, nil, cfg())
	if v[SlopeUp] <= 0 {
		t.Errorf("SlopeUp = %g, want > 0", v[SlopeUp])
	}
	if v[SlopeDown] >= 0 {
		t.Errorf("SlopeDown = %g, want < 0", v[SlopeDown])
	}
	if v[FracAboveHalfMax] <= 0 || v[FracAboveHalfMax] > 1 {
		t.Errorf("FracAboveHalfMax = %g", v[FracAboveHalfMax])
	}
}

func TestMomentsOfSymmetricData(t *testing.T) {
	// Symmetric SNR distribution → skewness ≈ 0.
	n := 101
	events := make([]spe.SPE, n)
	for i := range events {
		events[i] = spe.SPE{DM: float64(i), SNR: 10 - math.Abs(float64(i-n/2))*0.1, Time: 1}
	}
	v := Extract(events, core.Pulse{Start: 0, End: n, Peak: n / 2}, nil, cfg())
	if math.Abs(v[SNRSkewness]) > 0.5 {
		t.Errorf("skewness of symmetric pulse = %g", v[SNRSkewness])
	}
}
