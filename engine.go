package drapid

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"

	"drapid/internal/dmgrid"
	"drapid/internal/features"
	"drapid/internal/fleet"
	"drapid/internal/hdfs"
	"drapid/internal/obs"
	"drapid/internal/pipeline"
	"drapid/internal/rdd"
	"drapid/internal/yarn"
)

// config collects what the functional options set before New validates it.
type config struct {
	workers      int
	simClock     bool
	executors    int
	partsPerCore int
	fs           *hdfs.FS
	blockSize    int64
	replication  int
	dataNodes    int
	fleetLocal   int
	fleetRemote  []string
	fleetCfg     fleet.Config
	journalFS    bool
	journalDir   string
	metrics      *obs.Registry
	logger       *slog.Logger
}

// Option configures an Engine under construction (drapid.New).
type Option func(*config) error

// WithWorkers sets the host worker-goroutine pool width shared by every
// job on the engine. Zero (the default) means all host cores.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("drapid: workers must be >= 0, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithSimClock turns the calibrated simulated cluster clock on or off.
// Serving engines default to off (only wall-clock metrics); experiments
// that want the paper's Figure 4 accounting turn it on.
func WithSimClock(on bool) Option {
	return func(c *config) error {
		c.simClock = on
		return nil
	}
}

// WithExecutors sizes the simulated Spark cluster in paper-shape executors
// (2 vcores / 2.5 GB each; the testbed supports at most 22).
func WithExecutors(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("drapid: executors must be >= 1, got %d", n)
		}
		c.executors = n
		return nil
	}
}

// WithPartitionsPerCore sets the default hash-partitioner sizing for jobs
// that do not override it (the paper's custom partitioner used 32).
func WithPartitionsPerCore(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("drapid: partitions per core must be >= 1, got %d", n)
		}
		c.partsPerCore = n
		return nil
	}
}

// WithFS supplies the simulated HDFS instance the engine stores job inputs
// and ML output on, for callers that pre-upload files or share a
// filesystem across engines. The default engine creates its own.
func WithFS(fs *hdfs.FS) Option {
	return func(c *config) error {
		if fs == nil {
			return fmt.Errorf("drapid: WithFS requires a non-nil filesystem")
		}
		c.fs = fs
		return nil
	}
}

// WithStorage sizes the engine-owned filesystem (ignored under WithFS):
// block size in bytes, replica count, and data-node count.
func WithStorage(blockSize int64, replication, dataNodes int) Option {
	return func(c *config) error {
		if blockSize <= 0 || replication < 1 || dataNodes < 1 {
			return fmt.Errorf("drapid: invalid storage config (block=%d replication=%d nodes=%d)",
				blockSize, replication, dataNodes)
		}
		c.blockSize, c.replication, c.dataNodes = blockSize, replication, dataNodes
		return nil
	}
}

// Engine is the public façade over the D-RAPID batch pipeline: one engine
// owns a simulated HDFS + YARN platform and a host worker pool, and runs
// any number of identification jobs concurrently on them. Jobs are
// submitted with Submit and observed through their *Job handles; the pool
// is shared fairly across jobs via a token bucket (rdd.ExecConfig.Limiter),
// so J concurrent jobs still execute at most the configured worker count
// of tasks at once. An Engine is safe for concurrent use.
type Engine struct {
	fs           *hdfs.FS
	grants       []yarn.Container
	cost         rdd.CostModel
	exec         rdd.ExecConfig
	partsPerCore int
	coord        *fleet.Coordinator // nil without WithFleetWorkers/WithRemoteWorkers
	journal      fleet.Store        // nil without WithJournal/WithJournalDir
	metrics      *obs.Registry
	log          *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	closed   bool
	draining bool
}

// New builds an engine from functional options. The zero-option engine
// uses all host cores, four paper-shape executors, an 8 MB-block
// 15-data-node filesystem, and no simulated clock.
func New(opts ...Option) (*Engine, error) {
	cfg := config{
		executors:    4,
		partsPerCore: 32,
		blockSize:    8 << 20,
		replication:  3,
		dataNodes:    15,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	fs := cfg.fs
	if fs == nil {
		fs = hdfs.New(hdfs.Config{BlockSize: cfg.blockSize, Replication: cfg.replication}, cfg.dataNodes)
	}
	rm := yarn.NewResourceManager(yarn.PaperCluster())
	if max := rm.MaxContainers(yarn.PaperExecutor()); cfg.executors > max {
		return nil, fmt.Errorf("drapid: cluster supports at most %d paper-shape executors, asked for %d", max, cfg.executors)
	}
	grants, err := rm.Allocate(yarn.PaperExecutor(), cfg.executors)
	if err != nil {
		return nil, fmt.Errorf("drapid: allocating executors: %w", err)
	}
	exec := rdd.ExecConfig{Workers: cfg.workers, SimClock: cfg.simClock}
	exec.Limiter = rdd.NewLimiter(exec.NumWorkers())
	metrics := cfg.metrics
	if metrics == nil {
		metrics = obs.Default
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler) // a library is silent unless asked
	}
	cfg.fleetCfg.Metrics = metrics // coordinator gauges land in the engine's registry
	var journal fleet.Store
	switch {
	case cfg.journalDir != "":
		journal, err = fleet.NewDirStore(cfg.journalDir)
		if err != nil {
			return nil, fmt.Errorf("drapid: opening journal directory: %w", err)
		}
	case cfg.journalFS:
		journal = fleet.NewFSStore(fs, "journal/")
	}
	return &Engine{
		fs:           fs,
		grants:       grants,
		cost:         rdd.DefaultCostModel(),
		exec:         exec,
		partsPerCore: cfg.partsPerCore,
		coord:        newFleet(cfg, exec),
		journal:      journal,
		metrics:      metrics,
		log:          logger,
		jobs:         make(map[string]*Job),
	}, nil
}

// IdentifyJob specifies one identification run: the SPE data and cluster
// CSV inputs (Figure 3's two files) plus the knobs a caller may tune.
type IdentifyJob struct {
	// Data and Clusters are the two CSV inputs as raw lines (headers
	// optional); Submit uploads them to the engine filesystem under the
	// job's directory. They take precedence over DataFile/ClusterFile.
	Data     []string
	Clusters []string
	// DataFile and ClusterFile name files already present in the engine
	// filesystem (e.g. uploaded once and shared by many jobs).
	DataFile    string
	ClusterFile string
	// FreqGHz and BandMHz parameterise the dedispersion-curve fit in
	// feature extraction; zero takes the PALFA-like defaults (1.4, 300).
	FreqGHz float64
	BandMHz float64
	// PartitionsPerCore overrides the engine default when positive.
	PartitionsPerCore int
	// ResultBuffer, when positive, paces the producer: once the
	// furthest-ahead Results consumer is that many candidates behind,
	// search workers block on emit until the stream is drained (streaming
	// backpressure coupling search rate to consumption). A backpressured
	// job therefore REQUIRES an active Results consumer — Wait alone never
	// finishes once the bound is hit (Cancel still unblocks it) — and its
	// blocked workers keep holding the engine's shared pool tokens, so
	// co-tenant jobs stall with it: use it on a dedicated engine. The
	// candidate log is retained for replay in both modes; the buffer
	// bounds the consumer lag, not the job's memory.
	ResultBuffer int
}

// validate checks the spec names a usable pair of inputs.
func (spec IdentifyJob) validate() error {
	if len(spec.Data) == 0 && spec.DataFile == "" {
		return fmt.Errorf("drapid: IdentifyJob needs Data lines or a DataFile")
	}
	if len(spec.Clusters) == 0 && spec.ClusterFile == "" {
		return fmt.Errorf("drapid: IdentifyJob needs Clusters lines or a ClusterFile")
	}
	if spec.ResultBuffer < 0 {
		return fmt.Errorf("drapid: ResultBuffer must be >= 0, got %d", spec.ResultBuffer)
	}
	return nil
}

// Submit registers and starts a job, returning its handle immediately.
// The job runs on the engine's shared worker pool; ctx bounds its
// lifetime (cancelling ctx cancels the job, as does Job.Cancel). Inline
// Data/Clusters are uploaded synchronously so an invalid spec fails here
// rather than asynchronously.
func (e *Engine) Submit(ctx context.Context, spec IdentifyJob) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	id, err := e.allocateID()
	if err != nil {
		return nil, err
	}

	dataFile, clusterFile := spec.DataFile, spec.ClusterFile
	if len(spec.Data) > 0 {
		dataFile = "jobs/" + id + "/spe.csv"
		if _, err := e.fs.WriteLines(dataFile, spec.Data); err != nil {
			return nil, fmt.Errorf("drapid: uploading data: %w", err)
		}
	}
	if len(spec.Clusters) > 0 {
		clusterFile = "jobs/" + id + "/clusters.csv"
		if _, err := e.fs.WriteLines(clusterFile, spec.Clusters); err != nil {
			return nil, fmt.Errorf("drapid: uploading clusters: %w", err)
		}
	}

	freq, band := spec.FreqGHz, spec.BandMHz
	if freq == 0 {
		freq = 1.4
	}
	if band == 0 {
		band = 300
	}
	partsPerCore := e.partsPerCore
	if spec.PartitionsPerCore > 0 {
		partsPerCore = spec.PartitionsPerCore
	}

	j := e.newJobHandle(ctx, id, "identify", spec.ResultBuffer)
	cfg := pipeline.JobConfig{
		DataFile:          dataFile,
		ClusterFile:       clusterFile,
		OutDir:            "jobs/" + id + "/ml",
		PartitionsPerCore: partsPerCore,
		Feat:              features.Config{Grid: dmgrid.Default(), BandMHz: band, FreqGHz: freq},
		Emit:              j.emit,
	}
	if err := e.register(j); err != nil {
		return nil, err
	}
	go j.run(j.pipelineWork(cfg))
	return j, nil
}

// allocateID reserves the next job ID, refusing when the engine is closed
// or draining.
func (e *Engine) allocateID() (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return "", fmt.Errorf("drapid: engine is closed")
	}
	if e.draining {
		return "", ErrDraining
	}
	e.nextID++
	return fmt.Sprintf("job-%d", e.nextID), nil
}

// newJobHandle builds a job handle bound to its own driver context
// (metrics, simulated clock, fresh simulated executors) over the shared
// filesystem; the shared Limiter in e.exec is what makes concurrent jobs
// share the host pool. The per-job obs.Trace rides the job context so
// every layer below — detect driver, sps kernels, fleet shards —
// records into the same stage breakdown (DESIGN.md §10).
func (e *Engine) newJobHandle(ctx context.Context, id, kind string, buffer int) *Job {
	jctx, cancel := context.WithCancelCause(ctx)
	trace := obs.NewTrace()
	jctx = obs.WithTrace(jctx, trace)
	rctx := rdd.NewContext(e.fs, rdd.FromContainers(e.grants), e.cost)
	rctx.Exec = e.exec
	rctx.SetContext(jctx)
	j := newJob(id, jctx, cancel, rctx, buffer)
	j.kind, j.trace, j.metrics, j.log = kind, trace, e.metrics, e.log
	return j
}

// register installs the job in the engine's table, unwinding it (and any
// inputs already uploaded under its directory) when Close raced the
// submission.
func (e *Engine) register(j *Job) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		j.cancel(fmt.Errorf("drapid: engine is closed"))
		e.removeJobFiles(j.id) // don't leak the just-uploaded inputs
		return fmt.Errorf("drapid: engine is closed")
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.mu.Unlock()
	e.metrics.Counter("drapid_jobs_submitted_total", "Jobs accepted, by kind.",
		obs.L("kind", j.kind)).Inc()
	e.log.Info("job submitted", "job", j.id, "kind", j.kind)
	return nil
}

// Job returns a submitted job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns every submitted job in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.jobs[id])
	}
	return out
}

// Remove forgets a terminal job, releasing its candidate log, its handle,
// and its engine-filesystem artifacts (the uploaded inputs and saved ML
// output under jobs/<id>/) — the retention lever a long-lived server
// needs; jobs are otherwise kept for replay until the process exits.
// Files the caller pre-uploaded (IdentifyJob.DataFile/ClusterFile outside
// the job directory) are never touched. Removing a non-terminal job is an
// error; Cancel it first.
func (e *Engine) Remove(id string) error {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("drapid: no such job %q", id)
	}
	if !j.State().Terminal() {
		e.mu.Unlock()
		return fmt.Errorf("drapid: job %q is not terminal", id)
	}
	delete(e.jobs, id)
	for i, oid := range e.order {
		if oid == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	e.removeJobFiles(id)
	return nil
}

// removeJobFiles deletes everything the engine stored under the job's
// filesystem directory.
func (e *Engine) removeJobFiles(id string) {
	prefix := "jobs/" + id + "/"
	for _, name := range e.fs.List() {
		if strings.HasPrefix(name, prefix) {
			_ = e.fs.Delete(name)
		}
	}
}

// Workers reports the effective host worker-pool width jobs share.
func (e *Engine) Workers() int { return e.exec.NumWorkers() }

// FS exposes the engine filesystem so callers can pre-upload shared input
// files (IdentifyJob.DataFile/ClusterFile) or read a job's saved ML
// output directly.
func (e *Engine) FS() *hdfs.FS { return e.fs }

// Close stops accepting submissions and cancels every non-terminal job
// with ErrEngineClosed as the cause. It does not wait for jobs to unwind;
// use Job.Wait for that.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	for _, j := range jobs {
		j.cancel(ErrEngineClosed)
	}
	if e.coord != nil {
		e.coord.Close()
	}
}
