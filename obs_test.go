package drapid_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"drapid"
)

// The Result.Stages contract (DESIGN.md §10): every detect path reports a
// per-stage breakdown whose wall seconds partition the job's
// DetectSeconds — apportioning makes the shares sum to the elapsed time
// by construction, so these tests pin the sum within a small timing
// tolerance rather than any per-stage duration.

// stageTolerance is the allowed relative error between the summed stage
// walls and DetectSeconds, plus a small absolute floor for clock jitter
// on very fast runs.
const (
	stageTolerance = 0.05
	stageFloorSec  = 0.005
)

// runDetectJob submits spec, drains the candidate stream, and returns
// the finished job with its result.
func runDetectJob(t *testing.T, engine *drapid.Engine, spec drapid.DetectJob) (*drapid.Job, drapid.Result) {
	t.Helper()
	job, err := engine.SubmitDetect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range job.Results() {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return job, res
}

// stageSum adds up the wall seconds of the named stages, failing on any
// that are missing from the breakdown.
func stageSum(t *testing.T, stages map[string]drapid.StageStats, names ...string) float64 {
	t.Helper()
	var sum float64
	for _, name := range names {
		st, ok := stages[name]
		if !ok {
			t.Fatalf("Result.Stages missing stage %q (have %v)", name, stageNames(stages))
		}
		if st.WallSeconds < 0 {
			t.Fatalf("stage %q wall %g < 0", name, st.WallSeconds)
		}
		sum += st.WallSeconds
	}
	return sum
}

func stageNames(stages map[string]drapid.StageStats) []string {
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	return names
}

// wantClose asserts sum ≈ total within the partition tolerance.
func wantClose(t *testing.T, what string, sum, total float64) {
	t.Helper()
	diff := sum - total
	if diff < 0 {
		diff = -diff
	}
	if diff > total*stageTolerance+stageFloorSec {
		t.Errorf("%s: stage walls sum to %.4fs, DetectSeconds = %.4fs (diff %.4fs beyond %.0f%%)",
			what, sum, total, diff, 100*stageTolerance)
	}
}

// TestDetectStagesPartitionBatch checks the batch path: DetectSeconds
// stops at the search, so the detect-phase stages (ingest, zerodm, and
// the apportioned kernels) partition it, while the downstream stages
// are reported but excluded from the partition.
func TestDetectStagesPartitionBatch(t *testing.T) {
	reg := drapid.NewMetricsRegistry()
	engine, err := drapid.New(drapid.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	spec := detectSynthSpec()
	job, res := runDetectJob(t, engine, drapid.DetectJob{Synth: &spec, Threshold: 6.5})

	sum := stageSum(t, res.Stages, "ingest", "zerodm", "dedisperse", "normalise", "boxcar")
	wantClose(t, "batch", sum, res.DetectSeconds)
	for _, name := range []string{"cluster", "classify", "sift"} {
		if _, ok := res.Stages[name]; !ok {
			t.Errorf("Result.Stages missing downstream stage %q", name)
		}
	}
	if in := res.Stages["ingest"]; in.RecordsOut != int64(spec.NSamples) || in.Bytes == 0 {
		t.Errorf("ingest stage = %+v, want %d records out and nonzero bytes", in, spec.NSamples)
	}
	if cl := res.Stages["classify"]; cl.RecordsOut != int64(res.Records) {
		t.Errorf("classify RecordsOut = %d, want %d", cl.RecordsOut, res.Records)
	}
	if p := job.Progress(); len(p.Stages) == 0 {
		t.Error("Progress.Stages empty after completion")
	}

	// The job's stage walls also feed the engine registry.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	for _, want := range []string{
		`drapid_job_stage_seconds_count{stage="dedisperse"}`,
		`drapid_jobs_submitted_total{kind="detect"} 1`,
		`drapid_jobs_finished_total{kind="detect",state="succeeded"} 1`,
		`drapid_job_seconds_count{kind="detect"} 1`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("registry scrape missing %q", want)
		}
	}
}

// TestDetectStagesPartitionStreaming checks the streaming path: the
// stages interleave with ingest across the whole loop and DetectSeconds
// covers all of it, so every reported stage joins the partition.
func TestDetectStagesPartitionStreaming(t *testing.T) {
	engine, err := drapid.New(drapid.WithMetrics(drapid.NewMetricsRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	spec := detectSynthSpec()
	_, res := runDetectJob(t, engine, drapid.DetectJob{
		Synth:        &spec,
		Threshold:    6.5,
		BlockSamples: 4096,
	})
	if len(res.Stages) == 0 {
		t.Fatal("Result.Stages empty")
	}
	sum := stageSum(t, res.Stages, stageNames(res.Stages)...)
	wantClose(t, "streaming", sum, res.DetectSeconds)
}

// TestConcurrentJobsMetrics hammers one registry from several jobs at
// once (the -race CI run is the point): the lifecycle counters must
// balance exactly when the dust settles.
func TestConcurrentJobsMetrics(t *testing.T) {
	reg := drapid.NewMetricsRegistry()
	engine, err := drapid.New(drapid.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	const jobs = 4
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := drapid.SynthSpec{
				NChans: 32, NSamples: 4096, TsampSec: 256e-6,
				Seed:   int64(i + 1),
				Pulses: []drapid.InjectedPulse{{TimeSec: 0.3, DM: 30, WidthMs: 3, SNR: 20}},
			}
			job, err := engine.SubmitDetect(context.Background(), drapid.DetectJob{
				Synth: &spec, DMMax: 60, DMStep: 1, Threshold: 6.5,
			})
			if err != nil {
				t.Error(err)
				return
			}
			for _, err := range job.Results() {
				if err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := job.Wait(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	for _, want := range []string{
		`drapid_jobs_submitted_total{kind="detect"} 4`,
		`drapid_jobs_finished_total{kind="detect",state="succeeded"} 4`,
		"drapid_jobs_running 0",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("registry scrape missing %q", want)
		}
	}
}

// TestDetectStagesPartitionFleet checks the sharded path: worker-side
// stage seconds come back over the wire, fold across shards, and
// partition the coordinator's whole-loop DetectSeconds together with
// the driver-side ingest and sift spans.
func TestDetectStagesPartitionFleet(t *testing.T) {
	reg := drapid.NewMetricsRegistry()
	engine, err := drapid.New(drapid.WithWorkers(4), drapid.WithFleetWorkers(2), drapid.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	spec := detectSynthSpec()
	_, res := runDetectJob(t, engine, drapid.DetectJob{Synth: &spec, Threshold: 6.5, Shards: 4})
	if res.Fleet == nil || res.Fleet.Done == 0 {
		t.Fatalf("Result.Fleet = %+v, want completed shards", res.Fleet)
	}
	sum := stageSum(t, res.Stages, stageNames(res.Stages)...)
	wantClose(t, "fleet", sum, res.DetectSeconds)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	for _, want := range []string{
		"drapid_fleet_workers_known 2",
		"drapid_fleet_shards_done_total",
		"drapid_fleet_shard_attempts_total",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("fleet registry scrape missing %q", want)
		}
	}
}
