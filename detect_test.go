package drapid_test

import (
	"context"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"drapid"
)

// detectSynthSpec is the end-to-end fixture: a ~4.2 s synthetic band with
// ten injected pulses of known DM/width/SNR, all comfortably above the
// detection threshold, plus a broadband RFI burst.
func detectSynthSpec() drapid.SynthSpec {
	return drapid.SynthSpec{
		NChans: 128, NSamples: 16384, TsampSec: 256e-6,
		Fch1MHz: 1500, FoffMHz: -2,
		SourceName: "J1234+56",
		Seed:       29,
		Pulses: []drapid.InjectedPulse{
			{TimeSec: 0.30, DM: 18, WidthMs: 2, SNR: 16},
			{TimeSec: 0.65, DM: 45, WidthMs: 4, SNR: 13},
			{TimeSec: 1.00, DM: 70, WidthMs: 3, SNR: 22},
			{TimeSec: 1.35, DM: 98, WidthMs: 5, SNR: 14},
			{TimeSec: 1.70, DM: 125, WidthMs: 2.5, SNR: 18},
			{TimeSec: 2.05, DM: 152, WidthMs: 6, SNR: 15},
			{TimeSec: 2.40, DM: 180, WidthMs: 3.5, SNR: 20},
			{TimeSec: 2.75, DM: 210, WidthMs: 4.5, SNR: 12},
			{TimeSec: 3.10, DM: 240, WidthMs: 5.5, SNR: 17},
			{TimeSec: 3.45, DM: 268, WidthMs: 3, SNR: 25},
		},
		RFI: []drapid.RFIBurst{{TimeSec: 1.52, WidthMs: 4, Amp: 3}},
	}
}

// featureIndex resolves a Table 1 feature name to its vector index.
func featureIndex(t *testing.T, name string) int {
	t.Helper()
	for i, n := range drapid.FeatureNames() {
		if n == name {
			return i
		}
	}
	t.Fatalf("no feature named %q", name)
	return -1
}

// TestDetectJobRecall is the acceptance test for the single-pulse search
// frontend: ≥90% of the injected pulses must come back out of the full
// detect → cluster → identify pipeline as streamed candidates.
func TestDetectJobRecall(t *testing.T) {
	engine, err := drapid.New()
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	spec := detectSynthSpec()
	job, err := engine.SubmitDetect(context.Background(), drapid.DetectJob{
		Synth:     &spec,
		Threshold: 6.5,
	})
	if err != nil {
		t.Fatal(err)
	}

	var cands []drapid.Candidate
	for c, err := range job.Results() {
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, c)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 || res.Detections < len(cands) {
		t.Fatalf("Detections = %d with %d candidates", res.Detections, len(cands))
	}
	if res.DetectSeconds <= 0 {
		t.Fatalf("DetectSeconds = %g", res.DetectSeconds)
	}
	if res.Records != len(cands) {
		t.Fatalf("Records = %d, streamed %d", res.Records, len(cands))
	}
	if p := job.Progress(); p.Detections != res.Detections {
		t.Fatalf("Progress.Detections = %d, Result.Detections = %d", p.Detections, res.Detections)
	}
	// The default plan must resolve to the two-stage subband path on a
	// realistic band — the recall gate below is scored against it.
	if !strings.HasPrefix(res.Plan, "subband(") {
		t.Fatalf("Result.Plan = %q, want the subband default", res.Plan)
	}

	peakDM := featureIndex(t, "SNRPeakDM")
	startT := featureIndex(t, "StartTime")
	stopT := featureIndex(t, "StopTime")
	recovered := 0
	for _, p := range spec.Pulses {
		center := p.TimeSec + p.WidthMs/2000
		found := false
		for _, c := range cands {
			if math.Abs(c.Features[peakDM]-p.DM) <= 6 &&
				c.Features[startT] <= center+0.05 &&
				c.Features[stopT] >= center-0.05 {
				found = true
				break
			}
		}
		if found {
			recovered++
		} else {
			t.Logf("missed injection %+v", p)
		}
	}
	recall := float64(recovered) / float64(len(spec.Pulses))
	t.Logf("end-to-end recall %d/%d = %.0f%% (%d detections → %d candidates)",
		recovered, len(spec.Pulses), 100*recall, res.Detections, len(cands))
	if recall < 0.9 {
		t.Fatalf("end-to-end recall %.2f below 0.90", recall)
	}

	// The derived observation key carries the sanitised source name.
	for _, c := range cands {
		if !strings.HasPrefix(c.Key, "J1234+56:") {
			t.Fatalf("candidate key %q does not carry the source name", c.Key)
		}
	}
}

// TestDetectJobFromFilterbankBytes runs the same pipeline from serialised
// SIGPROC bytes — the path real recorded observations take.
func TestDetectJobFromFilterbankBytes(t *testing.T) {
	engine, err := drapid.New()
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	raw, err := drapid.GenerateFilterbank(drapid.SynthSpec{
		NChans: 64, NSamples: 8192, TsampSec: 256e-6,
		Seed:   5,
		Pulses: []drapid.InjectedPulse{{TimeSec: 0.5, DM: 60, WidthMs: 4, SNR: 25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := engine.SubmitDetect(context.Background(), drapid.DetectJob{
		Filterbank: raw,
		DMMin:      0, DMMax: 120, DMStep: 1,
		Key:  "TESTSET:55000.0000:10.0000:-5.0000:2",
		Plan: "brute", // keep the oracle path covered end to end
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for c, err := range job.Results() {
		if err != nil {
			t.Fatal(err)
		}
		if c.Key != "TESTSET:55000.0000:10.0000:-5.0000:2" {
			t.Fatalf("candidate key %q, want the explicit key", c.Key)
		}
		n++
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no candidates from an SNR-25 injection")
	}
	if res.Plan != "brute" {
		t.Fatalf("Result.Plan = %q, want the forced brute oracle", res.Plan)
	}
}

func TestDetectJobValidation(t *testing.T) {
	engine, err := drapid.New()
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	synth := &drapid.SynthSpec{NChans: 8, NSamples: 64}
	cases := map[string]drapid.DetectJob{
		"no input":       {},
		"both inputs":    {Filterbank: []byte{1}, Synth: synth},
		"bad DM range":   {Synth: synth, DMMin: 50, DMMax: 10, DMStep: 1},
		"bad DM step":    {Synth: synth, DMMin: 0, DMMax: 10, DMStep: -1},
		"bad threshold":  {Synth: synth, Threshold: -2},
		"bad buffer":     {Synth: synth, ResultBuffer: -1},
		"malformed key":  {Synth: synth, Key: "not-a-key"},
		"bad plan":       {Synth: synth, Plan: "turbo"},
		"bad filterbank": {Filterbank: []byte("not a filterbank")},
	}
	for name, spec := range cases {
		job, err := engine.SubmitDetect(context.Background(), spec)
		if err != nil {
			continue // rejected synchronously: good
		}
		if name != "bad filterbank" {
			t.Errorf("%s: accepted", name)
			continue
		}
		// Malformed bytes are only discovered asynchronously; the job
		// must fail, not hang or panic.
		if _, err := job.Wait(context.Background()); err == nil {
			t.Errorf("%s: job succeeded", name)
		}
	}
}

// TestDetectJobRecallStreaming holds the same ≥90% end-to-end gate on the
// block-streaming path: the identical fixture searched in bounded-memory
// gulps, clustered and identified segment by segment, must still recover
// the injected pulses through the streamed candidates.
func TestDetectJobRecallStreaming(t *testing.T) {
	engine, err := drapid.New()
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	spec := detectSynthSpec()
	job, err := engine.SubmitDetect(context.Background(), drapid.DetectJob{
		Synth:        &spec,
		Threshold:    6.5,
		BlockSamples: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cands []drapid.Candidate
	for c, err := range job.Results() {
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, c)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 {
		t.Fatal("streaming detect reported no raw events")
	}
	if res.Records != len(cands) {
		t.Fatalf("Records = %d, streamed %d", res.Records, len(cands))
	}
	if !strings.HasPrefix(res.Plan, "subband(") {
		t.Fatalf("Result.Plan = %q, want the subband default", res.Plan)
	}
	peakDM := featureIndex(t, "SNRPeakDM")
	startT := featureIndex(t, "StartTime")
	stopT := featureIndex(t, "StopTime")
	recovered := 0
	for _, p := range spec.Pulses {
		center := p.TimeSec + p.WidthMs/2000
		for _, c := range cands {
			if math.Abs(c.Features[peakDM]-p.DM) <= 6 &&
				c.Features[startT] <= center+0.05 &&
				c.Features[stopT] >= center-0.05 {
				recovered++
				break
			}
		}
	}
	recall := float64(recovered) / float64(len(spec.Pulses))
	t.Logf("streaming end-to-end recall %d/%d = %.0f%% (%d detections → %d candidates)",
		recovered, len(spec.Pulses), 100*recall, res.Detections, len(cands))
	if recall < 0.9 {
		t.Fatalf("streaming end-to-end recall %.2f below 0.90", recall)
	}
}

// TestDetectJobStreamCancelMidIngest cancels a streaming detect job while
// its FilterbankStream source is stalled mid-observation: the job must
// reach the cancelled state promptly once the source unblocks, and the
// candidate stream must terminate with the cancellation cause instead of
// hanging.
func TestDetectJobStreamCancelMidIngest(t *testing.T) {
	engine, err := drapid.New(drapid.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	raw, err := drapid.GenerateFilterbank(drapid.SynthSpec{
		NChans: 32, NSamples: 16384, TsampSec: 256e-6,
		Seed:   9,
		Pulses: []drapid.InjectedPulse{{TimeSec: 0.5, DM: 30, WidthMs: 4, SNR: 25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	go func() {
		pw.Write(raw[:len(raw)/2]) // header + early blocks, then stall
	}()
	job, err := engine.SubmitDetect(context.Background(), drapid.DetectJob{
		FilterbankStream: pr,
		BlockSamples:     2048,
		DMMin:            0, DMMax: 60, DMStep: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	streamDone := make(chan error, 1)
	go func() {
		for _, err := range job.Results() {
			if err != nil {
				streamDone <- err
				return
			}
		}
		streamDone <- nil
	}()

	job.Cancel()
	pw.CloseWithError(errors.New("source detached")) // unblock the stalled read

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, drapid.ErrCancelled) {
		t.Fatalf("Wait returned %v, want ErrCancelled", err)
	}
	if s := job.State(); s != drapid.JobCancelled {
		t.Fatalf("state = %v", s)
	}
	select {
	case err := <-streamDone:
		if !errors.Is(err, drapid.ErrCancelled) {
			t.Fatalf("candidate stream ended with %v, want ErrCancelled", err)
		}
	case <-ctx.Done():
		t.Fatal("candidate stream hung after cancellation")
	}
}

func TestDetectJobCancel(t *testing.T) {
	engine, err := drapid.New(drapid.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	spec := detectSynthSpec()
	job, err := engine.SubmitDetect(context.Background(), drapid.DetectJob{Synth: &spec})
	if err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := job.Wait(ctx); err == nil {
		t.Fatal("cancelled detect job returned nil error")
	}
	if s := job.State(); s != drapid.JobCancelled {
		t.Fatalf("state = %v", s)
	}
}
