package drapid

import (
	"fmt"
	"strings"

	"drapid/internal/pipeline"
	"drapid/internal/sift"
	"drapid/internal/spe"
)

// Sift configures the post-classification sifting stage of a DetectJob:
// the ranked-candidate view (Result.TopCandidates, Job.Top) and the
// repeat-source cross-match (Result.Sources). The zero value enables
// sifting with the documented defaults; set Disable to skip the stage.
// See DESIGN.md §8.
type Sift struct {
	// Disable turns sifting off: the job runs exactly as before this stage
	// existed, and the ranked views stay empty.
	Disable bool `json:"disable,omitempty"`
	// Top bounds Result.TopCandidates (and the default page of Job.Top);
	// zero takes DefaultTopCandidates.
	Top int `json:"top,omitempty"`
	// Catalog is an inline known-source catalog in "name,dm,period_s" CSV
	// (see internal/sift.CatalogHeader); matched sources carry the entry's
	// name in Source.Known. Inline text rather than a path so the HTTP API
	// ships it in the job document.
	Catalog string `json:"catalog,omitempty"`
	// MinGroup, MinSNR, CloseDM and CatalogDM override the sifting
	// parameters of the same names (zero keeps each default).
	MinGroup  int     `json:"min_group,omitempty"`
	MinSNR    float64 `json:"min_snr,omitempty"`
	CloseDM   float64 `json:"close_dm,omitempty"`
	CatalogDM float64 `json:"catalog_dm,omitempty"`
}

// DefaultTopCandidates bounds Result.TopCandidates when Sift.Top is zero.
const DefaultTopCandidates = 10

// params maps the public overrides onto the sifting parameter set.
func (s Sift) params() sift.Params {
	return sift.Params{
		MinGroup:  s.MinGroup,
		MinSNR:    s.MinSNR,
		CloseDM:   s.CloseDM,
		CatalogDM: s.CatalogDM,
	}
}

// validate checks the configuration and parses the inline catalog, so a
// bad catalog fails at submission rather than mid-job.
func (s Sift) validate() ([]sift.CatalogEntry, error) {
	if s.Top < 0 {
		return nil, fmt.Errorf("drapid: Sift.Top must be >= 0, got %d", s.Top)
	}
	if err := s.params().Validate(); err != nil {
		return nil, fmt.Errorf("drapid: %w", err)
	}
	if s.Catalog == "" {
		return nil, nil
	}
	cat, err := sift.ParseCatalog(strings.NewReader(s.Catalog))
	if err != nil {
		return nil, fmt.Errorf("drapid: parsing sift catalog: %w", err)
	}
	return cat, nil
}

// TopCandidate is one entry of the ranked sifted view: a DBSCAN group
// summarised by its peak event, rated on the sifting ladder, and annotated
// with the repeat source it cross-matched into (if any). Every field
// derives from the group's member events alone, which is what makes the
// ranked output record-for-record identical between the batch and
// streaming detect paths (DESIGN.md §8.4).
type TopCandidate struct {
	// Key identifies the observation; Cluster is the DBSCAN cluster id
	// (matching Candidate.Cluster for the same group).
	Key     string `json:"key"`
	Cluster int    `json:"cluster"`
	// Rank names the sifting-ladder rung ("rfi" … "excellent"); Score is
	// the canonical ordering key (rank first, peak SNR second).
	Rank  string  `json:"rank"`
	Score float64 `json:"score"`
	// SNR, DM, Time and Width describe the group's best event; N counts
	// members; the Min/Max pairs bound the group.
	SNR   float64 `json:"snr"`
	DM    float64 `json:"dm"`
	Time  float64 `json:"time"`
	Width int     `json:"width"`
	N     int     `json:"n"`
	DMMin float64 `json:"dm_min"`
	DMMax float64 `json:"dm_max"`
	TMin  float64 `json:"t_min"`
	TMax  float64 `json:"t_max"`
	// Source is the 1-based id of the repeat source this group folded into
	// (zero when the group rated below fair and joined none); Known is that
	// source's catalog name, when matched.
	Source int    `json:"source,omitempty"`
	Known  string `json:"known,omitempty"`
}

// Source is one cross-matched repeat source of the observation: detections
// of consistent DM folded together, with the detection count and best-SNR
// exemplar. It aliases the sifting stage's type the way InjectedPulse
// aliases the frontend's.
type Source = sift.Source

// TopView is the ranked snapshot Job.Top returns: the top candidates in
// canonical ranked order plus every cross-matched source.
type TopView struct {
	Top     []TopCandidate `json:"top"`
	Sources []Source       `json:"sources"`
}

// jobSift is a detect job's sifting state: configuration fixed at
// submission, plus the rated groups accumulated as clustering completes
// (once in batch, per segment in streaming). The groups slice is guarded
// by the job's mu; everything else is immutable after submission.
type jobSift struct {
	params  sift.Params
	catalog []sift.CatalogEntry
	top     int
	groups  []sift.Group
}

// addSiftGroups folds one clustering pass's rated groups into the job.
func (j *Job) addSiftGroups(gs []sift.Group) {
	j.mu.Lock()
	j.sift.groups = append(j.sift.groups, gs...)
	j.mu.Unlock()
}

// Top returns the ranked sifted view over everything clustered so far: up
// to n top candidates (n <= 0 takes the job's configured bound) and the
// cross-matched sources. Safe to call at any time from any goroutine — on
// a still-streaming job it snapshots the segments identified so far; on a
// completed job it equals Result.TopCandidates/Sources. Identification
// jobs and detect jobs with sifting disabled return an empty view.
func (j *Job) Top(n int) TopView {
	j.mu.Lock()
	s := j.sift
	var gs []sift.Group
	if s != nil {
		gs = append(gs, s.groups...)
	}
	j.mu.Unlock()
	if s == nil {
		return TopView{}
	}
	return siftView(gs, s, n)
}

// siftView ranks a snapshot of rated groups into the public view. gs is
// owned by the caller (mutated by sorting).
func siftView(gs []sift.Group, s *jobSift, n int) TopView {
	sift.SortGroups(gs)
	sources := sift.Sources(gs, s.params)
	sift.MatchCatalog(sources, s.catalog, s.params)
	srcOf := sift.SourceOf(sources)
	if n <= 0 {
		n = s.top
	}
	view := TopView{Sources: sources}
	for _, g := range gs {
		if g.Rank == sift.RankNoise {
			continue // below the floor: not a candidate at all
		}
		tc := TopCandidate{
			Key: g.Key, Cluster: g.ID,
			Rank: g.Rank.String(), Score: g.Score(),
			SNR: g.SNR, DM: g.DM, Time: g.Time, Width: g.Width, N: g.N,
			DMMin: g.DMMin, DMMax: g.DMMax, TMin: g.TMin, TMax: g.TMax,
		}
		if si, ok := srcOf[g.ID]; ok {
			tc.Source = sources[si].ID
			tc.Known = sources[si].Known
		}
		view.Top = append(view.Top, tc)
		if len(view.Top) >= n {
			break
		}
	}
	return view
}

// siftGroups rates every cluster of a prepared observation set. base
// offsets the cluster ids: the streaming path passes the cumulative
// cluster count of earlier segments so ids (and with them the ranked
// view and the candidate stream) match what one batch pass over the same
// events would have assigned — segments are cut at quiet gaps wider than
// the DBSCAN linkage reach, and batch clustering discovers clusters in
// time order, so per-segment ids continue the batch numbering exactly.
func siftGroups(obs []spe.Observation, prep *pipeline.Prepared, base int, p sift.Params) []sift.Group {
	var out []sift.Group
	for i, o := range obs {
		res := prep.Results[i]
		for c := range res.Members {
			out = append(out, sift.Build(base+c, o.Key, res.MemberEvents(c, o.Events), p))
		}
	}
	return out
}
