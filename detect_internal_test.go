package drapid

import (
	"reflect"
	"testing"

	"drapid/internal/sps"
)

// TestSynthSpecParity pins SynthSpec to the frontend's SynthConfig field
// for field: the direct struct conversion in SynthSpec.internal already
// fails to compile on a divergence, and this keeps the failure readable —
// naming the drifted field — if the conversion is ever rewritten.
func TestSynthSpecParity(t *testing.T) {
	pub := reflect.TypeOf(SynthSpec{})
	intl := reflect.TypeOf(sps.SynthConfig{})
	if pub.NumField() != intl.NumField() {
		t.Fatalf("SynthSpec has %d fields, sps.SynthConfig %d", pub.NumField(), intl.NumField())
	}
	for i := 0; i < pub.NumField(); i++ {
		pf, inf := pub.Field(i), intl.Field(i)
		if pf.Name != inf.Name {
			t.Errorf("field %d: SynthSpec.%s vs SynthConfig.%s", i, pf.Name, inf.Name)
		}
		if pf.Type != inf.Type {
			t.Errorf("field %s: type %v vs %v", pf.Name, pf.Type, inf.Type)
		}
		if pf.Tag.Get("json") != inf.Tag.Get("json") {
			t.Errorf("field %s: json tag %q vs %q (the HTTP spec and the internal one must marshal alike)",
				pf.Name, pf.Tag.Get("json"), inf.Tag.Get("json"))
		}
	}
}

// TestDetectGridRespectsDMMax pins the trial-plan arithmetic: the grid
// holds every lo+k·step up to hi and nothing beyond, even when the step
// does not divide the range.
func TestDetectGridRespectsDMMax(t *testing.T) {
	cases := []struct {
		lo, hi, step float64
		first, last  float64
		n            int
	}{
		{0, 300, 1, 0, 300, 301},
		{0, 10, 4, 0, 8, 3},      // 12 would overshoot DMMax
		{5, 6, 0.25, 5, 6, 5},    // fractional step, exact fit
		{10, 10.1, 1, 10, 10, 1}, // range smaller than one step
	}
	for _, c := range cases {
		grid, err := detectGrid(c.lo, c.hi, c.step)
		if err != nil {
			t.Fatalf("detectGrid(%g, %g, %g): %v", c.lo, c.hi, c.step, err)
		}
		trials := grid.Trials()
		if len(trials) != c.n {
			t.Fatalf("detectGrid(%g, %g, %g) has %d trials %v, want %d", c.lo, c.hi, c.step, len(trials), trials, c.n)
		}
		if trials[0] != c.first || trials[len(trials)-1] != c.last {
			t.Fatalf("detectGrid(%g, %g, %g) spans [%g, %g], want [%g, %g]",
				c.lo, c.hi, c.step, trials[0], trials[len(trials)-1], c.first, c.last)
		}
		for _, dm := range trials {
			if dm > c.hi {
				t.Fatalf("trial %g exceeds DMMax %g", dm, c.hi)
			}
		}
	}
}
