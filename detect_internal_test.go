package drapid

import "testing"

// TestDetectGridRespectsDMMax pins the trial-plan arithmetic: the grid
// holds every lo+k·step up to hi and nothing beyond, even when the step
// does not divide the range.
func TestDetectGridRespectsDMMax(t *testing.T) {
	cases := []struct {
		lo, hi, step float64
		first, last  float64
		n            int
	}{
		{0, 300, 1, 0, 300, 301},
		{0, 10, 4, 0, 8, 3},      // 12 would overshoot DMMax
		{5, 6, 0.25, 5, 6, 5},    // fractional step, exact fit
		{10, 10.1, 1, 10, 10, 1}, // range smaller than one step
	}
	for _, c := range cases {
		grid, err := detectGrid(c.lo, c.hi, c.step)
		if err != nil {
			t.Fatalf("detectGrid(%g, %g, %g): %v", c.lo, c.hi, c.step, err)
		}
		trials := grid.Trials()
		if len(trials) != c.n {
			t.Fatalf("detectGrid(%g, %g, %g) has %d trials %v, want %d", c.lo, c.hi, c.step, len(trials), trials, c.n)
		}
		if trials[0] != c.first || trials[len(trials)-1] != c.last {
			t.Fatalf("detectGrid(%g, %g, %g) spans [%g, %g], want [%g, %g]",
				c.lo, c.hi, c.step, trials[0], trials[len(trials)-1], c.first, c.last)
		}
		for _, dm := range trials {
			if dm > c.hi {
				t.Fatalf("trial %g exceeds DMMax %g", dm, c.hi)
			}
		}
	}
}
